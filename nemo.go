package nemo

import (
	"nemo/internal/admission"
	"nemo/internal/cachelib"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/fairywren"
	"nemo/internal/filedev"
	"nemo/internal/flashsim"
	"nemo/internal/kangaroo"
	"nemo/internal/logcache"
	"nemo/internal/setcache"
	"nemo/internal/trace"
	"nemo/internal/vtime"
)

// Device is the zoned flash device contract all engines run on: append-only
// zones, page reads, whole-zone resets, per-zone write pointers, and
// activity accounting. Two implementations ship — the simulator (NewDevice)
// with a per-channel virtual-time latency model, and the file-backed real
// device (OpenFileDevice) with measured latencies. Engines cannot tell them
// apart except through the clock.
type Device = device.Device

// DeviceGeometry is the backend-independent shape of a zoned device, for
// code that sizes devices without choosing a backend.
type DeviceGeometry = device.Geometry

// SimDevice is the simulated device implementation (see NewDevice).
type SimDevice = flashsim.Device

// DeviceConfig configures a simulated device; zero fields take defaults
// (4 KB pages, 256-page zones, 64 zones, 8 channels).
type DeviceConfig = flashsim.Config

// FileDeviceConfig configures a file-backed device (see OpenFileDevice).
type FileDeviceConfig = filedev.Config

// FileDevice is the file-backed device implementation: pread/pwrite into a
// preallocated image with the same zone semantics as the simulator and
// real, measured latencies.
type FileDevice = filedev.Device

// DeviceStats is the device-level accounting snapshot.
type DeviceStats = device.Stats

// Clock is the clock shared by a device and its workload driver: virtual on
// the simulator, wall time on real backends.
type Clock = vtime.Clock

// NewDevice creates a simulated device.
func NewDevice(cfg DeviceConfig) *SimDevice { return flashsim.New(cfg) }

// OpenFileDevice opens (or creates) a file-backed device. By default the
// image is reformatted — every zone's write pointer rebuilds to zero;
// FileDeviceConfig.Persist instead restores a cleanly closed image from its
// superblock (the warm-restart path, paired with Config.SnapshotPath). The
// caller closes the device when done (engines never do).
func OpenFileDevice(cfg FileDeviceConfig) (*FileDevice, error) { return filedev.Open(cfg) }

// Cache is a Nemo flash cache (the paper's contribution).
type Cache = core.Cache

// Config configures a Nemo cache; see DefaultConfig for Table 3 defaults.
type Config = core.Config

// CacheStats is Nemo's extended counter set (fill rates, writeback,
// sacrifices, index traffic).
type CacheStats = core.NemoStats

// MemoryOverhead is Nemo's modeled metadata cost in bits per object.
type MemoryOverhead = core.MemoryOverhead

// New creates a Nemo cache.
func New(cfg Config) (*Cache, error) { return core.New(cfg) }

// ShardedCache is a hash-partitioned Nemo cache: Config.Shards independent
// engines over disjoint zone ranges of one device, with per-shard locking so
// requests for different shards proceed fully in parallel.
type ShardedCache = core.Sharded

// NewSharded creates a sharded Nemo cache; cfg.DataZones is the total SG
// pool divided evenly across cfg.Shards shards. With Shards <= 1 the result
// behaves bit-for-bit like the unsharded engine.
func NewSharded(cfg Config) (*ShardedCache, error) { return core.NewSharded(cfg) }

// DefaultConfig returns the paper's Table 3 configuration scaled to the
// device geometry, with a dataZones-zone SG pool.
func DefaultConfig(dev Device, dataZones int) Config {
	return core.DefaultConfig(dev, dataZones)
}

// IndexZonesFor reports how many device zones New reserves for the on-flash
// index pool given an SG pool size; a device must have at least
// dataZones + IndexZonesFor(dataZones, 50) zones.
func IndexZonesFor(dataZones, sgsPerGroup int) int {
	return core.IndexZonesFor(dataZones, sgsPerGroup)
}

// Engine is the minimal cache-engine interface implemented by Nemo and all
// four baselines; Replay drives any Engine. Production capabilities —
// batched multi-ops, deletion, asynchronous writes — are the composable
// Engine v2 extension interfaces below; Adapt upgrades any plain Engine.
type Engine = cachelib.Engine

// BatchEngine executes many operations per lock acquisition: GetMany and
// SetMany group keys by shard (one hash pass, per-shard sub-batches,
// parallel fan-out on a ShardedCache).
type BatchEngine = cachelib.BatchEngine

// Deleter invalidates keys. Nemo tombstones (it has no exact per-object
// index): a zero-length marker shadows any still-cached flash copy until it
// ages out of the FIFO pool.
type Deleter = cachelib.Deleter

// AsyncEngine writes off the caller's critical path: SetAsync inserts into
// the in-memory SG and hands any triggered flush to the background flusher
// pool (Config.Flushers); Drain waits out deferred work.
type AsyncEngine = cachelib.AsyncEngine

// EngineV2 is the full production surface: Engine plus all three
// extensions. Cache and ShardedCache implement it natively.
type EngineV2 = cachelib.EngineV2

// Adapt upgrades any plain Engine (e.g. the four baselines) to EngineV2,
// delegating native capabilities and emulating the rest, so harness code
// written against v2 runs every engine unmodified.
func Adapt(e Engine) EngineV2 { return cachelib.Adapt(e) }

// Options carries the Engine v2 per-request knobs (TTL, admission hint,
// no-fill) the replayers thread through every engine; Hint biases admission
// per request. The op kind of a mixed-workload request is RequestKind
// (Request.Op) — see KindGet/KindSet/KindDelete below.
type (
	Options = cachelib.Options
	Hint    = cachelib.Hint
)

// Admission hints.
const (
	HintDefault = cachelib.HintDefault
	HintForce   = cachelib.HintForce
	HintBypass  = cachelib.HintBypass
)

// ErrDegraded is returned by writes (Set/SetAsync/SetMany/Delete) while a
// shard's device-fault circuit breaker is open (Config.BreakerThreshold):
// the shard keeps serving reads but fast-rejects writes until a recovery
// probe succeeds. Match with errors.Is.
var ErrDegraded = cachelib.ErrDegraded

// Stats is the common engine counter set with the paper's
// write-amplification and miss-ratio definitions.
type Stats = cachelib.Stats

// ReplayConfig controls a Replay run.
type ReplayConfig = cachelib.ReplayConfig

// ReplayResult carries the metrics collected by Replay.
type ReplayResult = cachelib.ReplayResult

// Replay issues GET requests from the stream against the engine,
// demand-filling misses with Set, and collects write amplification, miss
// ratio, and latency percentiles.
func Replay(e Engine, s Stream, cfg ReplayConfig) (ReplayResult, error) {
	return cachelib.Replay(e, s, cfg)
}

// ParallelReplayConfig controls a ParallelReplay run.
type ParallelReplayConfig = cachelib.ParallelReplayConfig

// ParallelReplayResult carries the metrics of one parallel replay,
// including host wall-clock throughput.
type ParallelReplayResult = cachelib.ParallelReplayResult

// ParallelReplay replays a materialized (optionally mixed GET/SET/DELETE)
// trace from many worker goroutines with deterministic per-shard
// sequencing: each shard of a ShardedCache sees the identical request
// subsequence it would in a single-threaded replay, so hit ratio and write
// amplification are independent of worker count while throughput scales
// with cores. ParallelReplayConfig.BatchSize drives the Engine v2 batched
// surface (per-shard GetMany/SetMany), AsyncSets the background flush
// pipeline, and Options the per-request knobs.
func ParallelReplay(e Engine, reqs []Request, cfg ParallelReplayConfig) (ParallelReplayResult, error) {
	return cachelib.ParallelReplay(e, reqs, cfg)
}

// Materialize draws n requests from a stream into owned buffers so the
// resulting trace can be replayed concurrently (see ParallelReplay).
func Materialize(s Stream, n int) []Request { return trace.Materialize(s, n) }

// ShardedEngine is the generic hash-partitioned facade: independent engines
// over disjoint capacity partitions behind one EngineV2 surface, routed by
// the same shard lane as ShardedCache, so every engine of a comparison run
// partitions the key space identically. With one shard it is behaviorally
// identical to the engine it wraps.
type ShardedEngine = cachelib.ShardedEngine

// NewShardedEngine wraps already-constructed per-shard engines (each owning
// a disjoint capacity partition) into one sharded facade.
func NewShardedEngine(engines []Engine) (*ShardedEngine, error) {
	return cachelib.NewShardedEngine(engines)
}

// LogCacheConfig configures the log-structured baseline.
type LogCacheConfig = logcache.Config

// NewLogCache creates the log-structured baseline ("Log" in Figure 12a):
// near-ideal write amplification, >100 bits/object of index memory.
func NewLogCache(cfg LogCacheConfig) (Engine, error) { return logcache.New(cfg) }

// NewShardedLogCache partitions the log cache's zone range into shards
// independent engines behind a ShardedEngine.
func NewShardedLogCache(cfg LogCacheConfig, shards int) (*ShardedEngine, error) {
	return logcache.NewSharded(cfg, shards)
}

// SetCacheConfig configures the set-associative baseline.
type SetCacheConfig = setcache.Config

// NewSetCache creates the CacheLib-style set-associative baseline ("Set"):
// minimal memory, ~16-20× write amplification for tiny objects.
func NewSetCache(cfg SetCacheConfig) (Engine, error) { return setcache.New(cfg) }

// NewShardedSetCache partitions the set cache's zone range into shards
// independent engines behind a ShardedEngine.
func NewShardedSetCache(cfg SetCacheConfig, shards int) (*ShardedEngine, error) {
	return setcache.NewSharded(cfg, shards)
}

// KangarooConfig configures the Kangaroo hierarchical baseline.
type KangarooConfig = kangaroo.Config

// NewKangaroo creates the Kangaroo baseline ("KG"): HLog + HSet over a
// conventional FTL with independent garbage collection (Case 3.1).
func NewKangaroo(cfg KangarooConfig) (Engine, error) { return kangaroo.New(cfg) }

// NewShardedKangaroo partitions Kangaroo's zone range into shards
// independent engines (each with its own HLog and FTL-backed HSet) behind a
// ShardedEngine.
func NewShardedKangaroo(cfg KangarooConfig, shards int) (*ShardedEngine, error) {
	return kangaroo.NewSharded(cfg, shards)
}

// FairyWRENConfig configures the FairyWREN hierarchical baseline.
type FairyWRENConfig = fairywren.Config

// NewFairyWREN creates the FairyWREN baseline ("FW"): hierarchical cache on
// a zoned device with GC folded into log-to-set migration (Case 3.2).
func NewFairyWREN(cfg FairyWRENConfig) (Engine, error) { return fairywren.New(cfg) }

// NewShardedFairyWREN partitions FairyWREN's zone range into shards
// independent engines (each with its own HLog, set tier, and migration/GC)
// behind a ShardedEngine.
func NewShardedFairyWREN(cfg FairyWRENConfig, shards int) (*ShardedEngine, error) {
	return fairywren.NewSharded(cfg, shards)
}

// Stream produces cache requests; see NewWorkload and the trace package
// re-exports below.
type Stream = trace.Stream

// Request is one generated cache request.
type Request = trace.Request

// ClusterConfig parameterizes a Twitter-like trace cluster (Table 5).
type ClusterConfig = trace.ClusterConfig

// Clusters returns the paper's four Table 5 cluster configurations.
func Clusters() []ClusterConfig { return append([]ClusterConfig(nil), trace.Clusters...) }

// NewZipfStream creates a deterministic Zipfian request stream.
func NewZipfStream(cfg ClusterConfig) Stream { return trace.NewZipf(cfg) }

// NewWorkload builds the paper's default benchmark: the four Table 5
// clusters scaled to wssPerCluster bytes each and interleaved equally.
func NewWorkload(wssPerCluster int64, seed int64) (Stream, error) {
	return trace.DefaultInterleaved(wssPerCluster, seed)
}

// RequestKind discriminates the op types of a mixed trace (Request.Op).
type RequestKind = trace.Kind

// Mixed-trace request kinds.
const (
	KindGet    = trace.KindGet
	KindSet    = trace.KindSet
	KindDelete = trace.KindDelete
)

// NewMixedStream rewrites a fraction of a stream's requests into explicit
// SET and DELETE operations — the mixed workload a production cache service
// receives — while keeping the inner stream's key popularity and sizes.
func NewMixedStream(inner Stream, setFrac, delFrac float64, seed int64) (Stream, error) {
	return trace.NewMixed(inner, setFrac, delFrac, seed)
}

// AdmissionPolicy gates demand fills during Replay (nil admits everything).
type AdmissionPolicy = admission.Policy

// AdmitAll is the default admission policy: every miss is filled.
func AdmitAll() AdmissionPolicy { return admission.AdmitAll{} }

// RandomAdmission admits fills with probability p (CacheLib's static
// "dynamic random" policy), trading hit ratio for flash write volume.
func RandomAdmission(p float64, seed int64) AdmissionPolicy {
	return admission.NewRandom(p, seed)
}

// RejectFirstAdmission admits an object only on its second appearance
// within a window-sized doorkeeper, filtering one-hit wonders off flash.
func RejectFirstAdmission(window int) AdmissionPolicy {
	return admission.NewRejectFirst(window)
}
