// Command nemoserve runs the Nemo cache as a memcached-text-protocol
// network service on a zoned flash device — the simulator by default, or a
// file-backed real device via -device file:<path>.
//
// Usage:
//
//	nemoserve [-addr 127.0.0.1:11211] [-shards 8] [-zones 48]
//	          [-flushers 2] [-sync-set] [-max-batch 64]
//	          [-device sim|file:<path>]
//	          [-snapshot <path>] [-snapshot-every 30s]
//
// The server speaks the protocol subset documented in the package docs
// (get/gets multi-key, set, delete, stats, version, quit, noreply):
// pipelined requests coalesce into batched engine rounds, SETs ride the
// asynchronous flush pipeline unless -sync-set, and SIGINT/SIGTERM trigger
// the graceful drain (stop accepting, answer in-flight batches, Drain the
// engine) before exit. `nemobench -servebench` drives the same serving
// stack over loopback and records the BENCH_serve.json baseline.
//
// -snapshot enables warm restart: the device is opened persistently (file
// backend; the simulator is volatile, so every sim restart is cold), boot
// adopts the snapshot when it still matches the device, the graceful drain
// checkpoints back to it, and -snapshot-every adds periodic checkpoints in
// between. A missing, corrupt, or stale snapshot is reported and the server
// simply starts cold — snapshots are strictly throwaway.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/server"
	"nemo/internal/setblock"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		shards    = flag.Int("shards", 8, "cache shards (data zones must divide evenly)")
		zones     = flag.Int("zones", 48, "total SG-pool data zones across shards")
		flushers  = flag.Int("flushers", 2, "background flusher goroutines (async SETs)")
		syncSet   = flag.Bool("sync-set", false, "serve SETs through the synchronous path")
		maxBatch  = flag.Int("max-batch", 64, "pipelined requests coalesced per engine round")
		devStr    = flag.String("device", "sim", "device backend: sim, or file:<path> (file-backed real device)")
		snapPath  = flag.String("snapshot", "", "warm-restart snapshot path (restore on boot, checkpoint on drain)")
		snapEvery = flag.Duration("snapshot-every", 0, "periodic checkpoint interval (0 = only on drain; needs -snapshot)")
	)
	flag.Parse()

	if *shards < 1 || *zones%*shards != 0 {
		fmt.Fprintf(os.Stderr, "nemoserve: %d data zones not divisible by %d shards\n", *zones, *shards)
		return 2
	}
	spec, err := backend.Parse(*devStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 2
	}
	const pageSize = 4096
	perData := *zones / *shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	geom := device.Geometry{
		PageSize:     pageSize,
		PagesPerZone: 256,
		Zones:        *shards * (perData + perIdx),
	}
	open := spec.Open
	if *snapPath != "" {
		open = spec.OpenPersistent
	}
	dev, err := open(geom)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	defer dev.Close()
	cfg := core.DefaultConfig(dev, *zones)
	cfg.Shards = *shards
	cfg.Flushers = *flushers
	cfg.SnapshotPath = *snapPath
	bootStart := time.Now()
	cache, err := core.NewSharded(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	defer cache.Close()
	if *snapPath != "" {
		switch restored, rerr := cache.RestoreOutcome(); {
		case restored:
			st := cache.Stats()
			fmt.Printf("nemoserve: warm restart from %s in %d ms (gets=%d hits=%d sets=%d)\n",
				*snapPath, time.Since(bootStart).Milliseconds(), st.Gets, st.Hits, st.Sets)
		case rerr != nil:
			fmt.Printf("nemoserve: snapshot refused (%v) — cold start\n", rerr)
		default:
			fmt.Printf("nemoserve: no snapshot at %s — cold start\n", *snapPath)
		}
	}

	srv, err := server.New(server.Config{
		Engine:   cache,
		SyncSet:  *syncSet,
		MaxBatch: *maxBatch,
		// Exactly the engine's per-object capacity: key + stored value
		// (data plus the item envelope) must fit one set page.
		MaxItemBytes: pageSize - setblock.HeaderSize - setblock.EntryOverhead,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	fmt.Printf("nemoserve: listening on %s (%d shards, %d data zones, %d flushers, sync-set=%v, device=%s)\n",
		l.Addr(), *shards, *zones, *flushers, *syncSet, spec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	var stopSnap chan struct{}
	if *snapPath != "" && *snapEvery > 0 {
		stopSnap = make(chan struct{})
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := cache.Checkpoint(*snapPath); err != nil {
						fmt.Fprintln(os.Stderr, "nemoserve: checkpoint:", err)
					}
				case <-stopSnap:
					return
				}
			}
		}()
	}

	select {
	case s := <-sig:
		fmt.Printf("nemoserve: %v — draining\n", s)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	if stopSnap != nil {
		close(stopSnap)
	}
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve: drain:", err)
		return 1
	}
	if *snapPath != "" {
		t0 := time.Now()
		if err := cache.Checkpoint(*snapPath); err != nil {
			fmt.Fprintln(os.Stderr, "nemoserve: checkpoint:", err)
			return 1
		}
		fmt.Printf("nemoserve: checkpointed to %s in %d ms\n", *snapPath, time.Since(t0).Milliseconds())
	}
	st := cache.Stats()
	fmt.Printf("nemoserve: drained (gets=%d hits=%d sets=%d deletes=%d rderr=%d wrerr=%d)\n",
		st.Gets, st.Hits, st.Sets, st.Deletes, st.ReadErrors, st.WriteErrors)
	return 0
}
