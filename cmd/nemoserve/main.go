// Command nemoserve runs the Nemo cache as a memcached-text-protocol
// network service on a zoned flash device — the simulator by default, or a
// file-backed real device via -device file:<path>.
//
// Usage:
//
//	nemoserve [-addr 127.0.0.1:11211] [-shards 8] [-zones 48]
//	          [-flushers 2] [-sync-set] [-max-batch 64]
//	          [-max-conns 0] [-reject-busy] [-idle-timeout 0] [-read-timeout 0]
//	          [-degraded-threshold 3] [-degraded-probe 1s]
//	          [-write-retries 2] [-retry-backoff 2ms]
//	          [-device sim|file:<path>]
//	          [-snapshot <path>] [-snapshot-every 30s]
//
// The server speaks the protocol subset documented in the package docs
// (get/gets multi-key, set, delete, stats, version, quit, noreply):
// pipelined requests coalesce into batched engine rounds, SETs ride the
// asynchronous flush pipeline unless -sync-set, and SIGINT/SIGTERM trigger
// the graceful drain (stop accepting, answer in-flight batches, Drain the
// engine) before exit. `nemobench -servebench` drives the same serving
// stack over loopback and records the BENCH_serve.json baseline.
//
// Overload protection: -max-conns caps concurrent connections (0 =
// unlimited) — excess dials park in the accept queue, or are answered
// `SERVER_ERROR busy` and closed with -reject-busy. -idle-timeout drops
// connections with no new request batch; -read-timeout bounds each read
// inside a request (the slow-loris defense).
//
// The device-fault circuit breaker is ON by default in nemoserve
// (-degraded-threshold 3): that many consecutive flush failures flip the
// affected shard to read-only degraded mode — SETs and DELETEs answer
// `SERVER_ERROR degraded`, GETs keep serving — and every -degraded-probe
// of device time one probe write is admitted to test recovery. Set
// -degraded-threshold 0 to disable. -write-retries/-retry-backoff bound
// in-place append retries beneath the breaker. SIGQUIT dumps the server
// counters and each shard's breaker state to stderr without disturbing
// service.
//
// -snapshot enables warm restart: the device is opened persistently (file
// backend; the simulator is volatile, so every sim restart is cold), boot
// adopts the snapshot when it still matches the device, the graceful drain
// checkpoints back to it, and -snapshot-every adds periodic checkpoints in
// between. A missing, corrupt, or stale snapshot is reported and the server
// simply starts cold — snapshots are strictly throwaway.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nemo/internal/backend"
	"nemo/internal/core"
	"nemo/internal/device"
	"nemo/internal/server"
	"nemo/internal/setblock"
)

func main() {
	os.Exit(run())
}

// dumpHealth writes the on-demand SIGQUIT health report: the server's
// protocol counters followed by every shard's breaker snapshot. Purely
// observational — service continues undisturbed.
func dumpHealth(w io.Writer, srv *server.Server, cache *core.Sharded) {
	fmt.Fprintf(w, "nemoserve: health dump (%s)\n", time.Now().Format(time.RFC3339))
	for _, f := range srv.Fields() {
		fmt.Fprintf(w, "  server %-22s %d\n", f.Name, f.Value)
	}
	for _, h := range cache.Health() {
		line := fmt.Sprintf("  shard %d: %s fails=%d degraded_entered=%d degraded=%s retries=%d",
			h.Shard, h.State, h.ConsecutiveFails, h.DegradedEntered,
			h.Degraded.Truncate(time.Millisecond), h.WriteRetries)
		if h.LastWriteErr != "" {
			line += fmt.Sprintf(" last_err=%q", h.LastWriteErr)
		}
		fmt.Fprintln(w, line)
	}
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		shards    = flag.Int("shards", 8, "cache shards (data zones must divide evenly)")
		zones     = flag.Int("zones", 48, "total SG-pool data zones across shards")
		flushers  = flag.Int("flushers", 2, "background flusher goroutines (async SETs)")
		syncSet   = flag.Bool("sync-set", false, "serve SETs through the synchronous path")
		maxBatch  = flag.Int("max-batch", 64, "pipelined requests coalesced per engine round")
		maxConns  = flag.Int("max-conns", 0, "max concurrent connections (0 = unlimited)")
		rejBusy   = flag.Bool("reject-busy", false, "answer SERVER_ERROR busy at the cap instead of parking accepts")
		idleTO    = flag.Duration("idle-timeout", 0, "drop connections idle between request batches this long (0 = never)")
		readTO    = flag.Duration("read-timeout", 0, "per-read deadline inside a request, the slow-loris bound (0 = none)")
		degThresh = flag.Int("degraded-threshold", 3, "consecutive flush failures that trip a shard read-only (0 = breaker off)")
		degProbe  = flag.Duration("degraded-probe", time.Second, "device-clock interval between recovery probes while degraded")
		wrRetries = flag.Int("write-retries", 2, "in-place retries of a failed page append (0 = none)")
		wrBackoff = flag.Duration("retry-backoff", 2*time.Millisecond, "base delay between append retries, doubling per attempt")
		devStr    = flag.String("device", "sim", "device backend: sim, or file:<path> (file-backed real device)")
		snapPath  = flag.String("snapshot", "", "warm-restart snapshot path (restore on boot, checkpoint on drain)")
		snapEvery = flag.Duration("snapshot-every", 0, "periodic checkpoint interval (0 = only on drain; needs -snapshot)")
	)
	flag.Parse()

	if *shards < 1 || *zones%*shards != 0 {
		fmt.Fprintf(os.Stderr, "nemoserve: %d data zones not divisible by %d shards\n", *zones, *shards)
		return 2
	}
	spec, err := backend.Parse(*devStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 2
	}
	const pageSize = 4096
	perData := *zones / *shards
	perIdx := core.IndexZonesFor(perData, core.DefaultSGsPerIndexGroup)
	geom := device.Geometry{
		PageSize:     pageSize,
		PagesPerZone: 256,
		Zones:        *shards * (perData + perIdx),
	}
	open := spec.Open
	if *snapPath != "" {
		open = spec.OpenPersistent
	}
	dev, err := open(geom)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	defer dev.Close()
	cfg := core.DefaultConfig(dev, *zones)
	cfg.Shards = *shards
	cfg.Flushers = *flushers
	cfg.SnapshotPath = *snapPath
	cfg.BreakerThreshold = *degThresh
	cfg.BreakerProbeAfter = *degProbe
	cfg.WriteRetries = *wrRetries
	cfg.RetryBackoff = *wrBackoff
	bootStart := time.Now()
	cache, err := core.NewSharded(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	defer cache.Close()
	if *snapPath != "" {
		switch restored, rerr := cache.RestoreOutcome(); {
		case restored:
			st := cache.Stats()
			fmt.Printf("nemoserve: warm restart from %s in %d ms (gets=%d hits=%d sets=%d)\n",
				*snapPath, time.Since(bootStart).Milliseconds(), st.Gets, st.Hits, st.Sets)
		case rerr != nil:
			fmt.Printf("nemoserve: snapshot refused (%v) — cold start\n", rerr)
		default:
			fmt.Printf("nemoserve: no snapshot at %s — cold start\n", *snapPath)
		}
	}

	srv, err := server.New(server.Config{
		Engine:      cache,
		SyncSet:     *syncSet,
		MaxBatch:    *maxBatch,
		MaxConns:    *maxConns,
		RejectBusy:  *rejBusy,
		IdleTimeout: *idleTO,
		ReadTimeout: *readTO,
		// Exactly the engine's per-object capacity: key + stored value
		// (data plus the item envelope) must fit one set page.
		MaxItemBytes: pageSize - setblock.HeaderSize - setblock.EntryOverhead,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	fmt.Printf("nemoserve: listening on %s (%d shards, %d data zones, %d flushers, sync-set=%v, device=%s)\n",
		l.Addr(), *shards, *zones, *flushers, *syncSet, spec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			dumpHealth(os.Stderr, srv, cache)
		}
	}()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	var stopSnap chan struct{}
	if *snapPath != "" && *snapEvery > 0 {
		stopSnap = make(chan struct{})
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := cache.Checkpoint(*snapPath); err != nil {
						fmt.Fprintln(os.Stderr, "nemoserve: checkpoint:", err)
					}
				case <-stopSnap:
					return
				}
			}
		}()
	}

	select {
	case s := <-sig:
		fmt.Printf("nemoserve: %v — draining\n", s)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "nemoserve:", err)
		return 1
	}
	if stopSnap != nil {
		close(stopSnap)
	}
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "nemoserve: drain:", err)
		return 1
	}
	if *snapPath != "" {
		t0 := time.Now()
		if err := cache.Checkpoint(*snapPath); err != nil {
			fmt.Fprintln(os.Stderr, "nemoserve: checkpoint:", err)
			return 1
		}
		fmt.Printf("nemoserve: checkpointed to %s in %d ms\n", *snapPath, time.Since(t0).Milliseconds())
	}
	st := cache.Stats()
	fmt.Printf("nemoserve: drained (gets=%d hits=%d sets=%d deletes=%d rderr=%d wrerr=%d)\n",
		st.Gets, st.Hits, st.Sets, st.Deletes, st.ReadErrors, st.WriteErrors)
	return 0
}
