// Command tracegen writes synthetic workload traces in the repository's
// binary trace format, so experiments can replay byte-identical request
// streams across engines and runs.
//
// Usage:
//
//	tracegen -out trace.bin -ops 1000000 [-cluster cluster14] [-wss 64MiB-bytes] [-seed 1]
//	tracegen -out mix.bin -ops 1000000 -cluster all -wss 268435456
package main

import (
	"flag"
	"fmt"
	"os"

	"nemo/internal/trace"
)

func main() {
	var (
		out     = flag.String("out", "", "output file (required)")
		ops     = flag.Int("ops", 1_000_000, "number of requests")
		cluster = flag.String("cluster", "all", "cluster14|cluster29|cluster34|cluster52|all (interleaved)")
		wss     = flag.Int64("wss", 64<<20, "target working-set size in bytes (per cluster for 'all')")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var stream trace.Stream
	if *cluster == "all" {
		s, err := trace.DefaultInterleaved(*wss, *seed)
		if err != nil {
			fatal(err)
		}
		stream = s
	} else {
		cfg, err := trace.ClusterByName(*cluster)
		if err != nil {
			fatal(err)
		}
		cfg.Seed += *seed * 1000003
		stream = trace.NewZipf(cfg.Scaled(*wss))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	var req trace.Request
	for i := 0; i < *ops; i++ {
		stream.Next(&req)
		if err := w.Write(&req); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d requests to %s\n", w.Count(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
