package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"nemo/internal/backend"
	"nemo/internal/setbench"
)

// setBenchOptions carries the -setbench flag set.
type setBenchOptions struct {
	shardList string       // comma-separated shard counts
	ops       int          // SET count per configuration
	flushers  int          // background flusher goroutines for the async rows
	device    backend.Spec // device backend the rows run on
	jsonPath  string       // output path for the machine-readable baseline
	snapshot  string       // warm-restart snapshot path (checkpoint + reopen between warm-up and measurement)
}

// setBenchRow is one measured configuration, serialized to BENCH_set.json
// so CI runs accumulate a comparable perf trajectory for the write path —
// the mirror of -getbench's BENCH_get.json.
type setBenchRow struct {
	Shards     int     `json:"shards"`
	Goroutines int     `json:"goroutines"`
	Async      bool    `json:"async"`
	Flushers   int     `json:"flushers"`
	Ops        int     `json:"ops"`
	SetsPerSec float64 `json:"sets_per_sec"`
	SetP50Ns   int64   `json:"set_p50_ns"`
	SetP99Ns   int64   `json:"set_p99_ns"`
	ALWA       float64 `json:"alwa"`
	WriteErrs  uint64  `json:"write_errors"`
	NumCPU     int     `json:"num_cpu"`
	Device     string  `json:"device"`
	// Warm-restart columns, present only for -snapshot runs: whether the
	// post-warm-up reopen adopted the checkpoint, and how long the restore
	// (snapshot load + validation + adoption) took.
	Restored  *bool  `json:"restored,omitempty"`
	RestoreMS *int64 `json:"restore_ms,omitempty"`
}

// runSetBench measures parallel SET throughput and per-call latency
// percentiles at 1/4/8 goroutines for each shard count, in both
// synchronous and async-flush mode, prints the table, and writes the JSON
// baseline. The workload is the shared internal/setbench harness; the
// async rows route fills through SetAsync and the three-phase background
// flush pipeline (core/writepath.go), so the sync-vs-async setp99 gap in
// one table is the pipeline's measured win on this host.
func runSetBench(out io.Writer, o setBenchOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}
	if o.ops <= 0 {
		o.ops = 200_000
	}
	if o.flushers <= 0 {
		o.flushers = 2
	}

	keys, vals := setbench.Workload()
	var rows []setBenchRow
	fmt.Fprintf(out, "%-7s %-11s %-6s %-10s %-12s %-10s %-10s %-7s %-6s\n",
		"shards", "goroutines", "async", "ops", "sets/s", "setp50", "setp99", "ALWA", "wrerr")
	for _, shards := range shardCounts {
		if setbench.Zones%shards != 0 {
			fmt.Fprintf(out, "%-7d skipped: %d data zones not divisible\n", shards, setbench.Zones)
			continue
		}
		for _, async := range []bool{false, true} {
			flushers := 0
			if async {
				flushers = o.flushers
			}
			for _, gs := range []int{1, 4, 8} {
				// A fresh cache per row keeps every configuration's
				// cold-start-to-steady-state shape identical.
				snapPath := ""
				if o.snapshot != "" {
					snapPath = fmt.Sprintf("%s.%d.%d.%v", o.snapshot, shards, gs, async)
					os.Remove(snapPath)
				}
				cache, dev, err := setbench.BuildOn(o.device, shards, flushers, snapPath)
				if err != nil {
					return fmt.Errorf("shards=%d: %w", shards, err)
				}
				// Warm-up pass: fills the buffers and part of the pool so
				// the measured loop spends its time in the flush/evict
				// steady state.
				if _, err := setbench.Run(cache, keys, vals, gs, o.ops/4, async); err != nil {
					cache.Close()
					dev.Close()
					return fmt.Errorf("shards=%d warmup: %w", shards, err)
				}
				var restored *bool
				var restoreMS *int64
				if snapPath != "" {
					// Kill-and-restore between warm-up and measurement: the
					// close checkpoints the warmed state, the reopen adopts
					// it, and the measured loop starts exactly as warm as a
					// run that never restarted.
					if err := cache.Close(); err != nil {
						dev.Close()
						return fmt.Errorf("shards=%d: checkpoint close: %w", shards, err)
					}
					t0 := time.Now()
					cache, err = setbench.Reopen(dev, shards, flushers, snapPath)
					ms := time.Since(t0).Milliseconds()
					if err != nil {
						dev.Close()
						return fmt.Errorf("shards=%d: reopen: %w", shards, err)
					}
					ok, rerr := cache.RestoreOutcome()
					if !ok {
						fmt.Fprintf(out, "%-7d warm restore failed (%v) — measuring cold\n", shards, rerr)
					}
					restored, restoreMS = &ok, &ms
				}
				res, err := setbench.Run(cache, keys, vals, gs, o.ops, async)
				if err != nil {
					cache.Close()
					dev.Close()
					return fmt.Errorf("shards=%d: %w", shards, err)
				}
				if err := cache.Close(); err != nil {
					dev.Close()
					return fmt.Errorf("shards=%d: close: %w", shards, err)
				}
				if err := dev.Close(); err != nil {
					return fmt.Errorf("shards=%d: close device: %w", shards, err)
				}
				if snapPath != "" {
					os.Remove(snapPath) // the row's snapshot is scratch, not an artifact
				}
				row := setBenchRow{
					Shards:     shards,
					Goroutines: gs,
					Async:      async,
					Flushers:   flushers,
					Ops:        res.Sets,
					SetsPerSec: res.SetsPerSec,
					SetP50Ns:   res.P50.Nanoseconds(),
					SetP99Ns:   res.P99.Nanoseconds(),
					ALWA:       res.ALWA,
					WriteErrs:  res.WriteErrs,
					NumCPU:     runtime.NumCPU(),
					Device:     o.device.String(),
					Restored:   restored,
					RestoreMS:  restoreMS,
				}
				rows = append(rows, row)
				fmt.Fprintf(out, "%-7d %-11d %-6v %-10d %-12.0f %-10v %-10v %-7.3f %-6d\n",
					row.Shards, row.Goroutines, row.Async, row.Ops, row.SetsPerSec,
					res.P50, res.P99, row.ALWA, row.WriteErrs)
			}
		}
	}

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}
