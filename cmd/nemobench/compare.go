package main

import (
	"io"
	"strings"

	"nemo/internal/backend"
	"nemo/internal/experiments"
)

// compareOptions carries the -compare flag set (shared flags reuse the
// -replay spellings: -shards, -workers, -ops, -seed, -batch, -async,
// -flushers, -setfrac, -delfrac, -scale).
type compareOptions struct {
	shardList string
	workers   int
	ops       int
	seed      int64
	batch     int
	async     bool
	flushers  int
	setFrac   float64
	delFrac   float64
	scale     string
	engines   string       // comma-separated filter (nemo,log,set,kg,fw)
	parallel  bool         // replay the engines of one shard count concurrently
	noTime    bool         // omit wall-clock columns (byte-deterministic table)
	device    backend.Spec // device backend every engine runs on
}

// runCompare drives the cross-engine comparison: the same materialized
// mixed trace through all five sharded engines at each shard count.
func runCompare(out io.Writer, o compareOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}
	var engines []string
	if s := strings.TrimSpace(o.engines); s != "" {
		engines = strings.Split(s, ",")
	}
	return experiments.RunCompare(experiments.CompareConfig{
		Scale:    o.scale,
		Shards:   shardCounts,
		Workers:  o.workers,
		Ops:      o.ops,
		Seed:     o.seed,
		Batch:    o.batch,
		Async:    o.async,
		Flushers: o.flushers,
		SetFrac:  o.setFrac,
		DelFrac:  o.delFrac,
		Engines:  engines,
		Parallel: o.parallel,
		HostTime: !o.noTime,
		Device:   o.device,
		Out:      out,
	})
}
