package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"nemo/internal/backend"
	"nemo/internal/gcbench"
)

// gcBenchOptions carries the -gcbench flag set.
type gcBenchOptions struct {
	shardList string       // comma-separated shard counts
	keys      int          // resident keys per configuration (0 = 1M)
	ops       int          // GETs issued under churn (0 = harness default)
	device    backend.Spec // device backend the rows run on
	jsonPath  string       // output path for the machine-readable baseline
}

// gcBenchRow is one measured configuration, serialized to BENCH_gc.json so
// CI runs accumulate a comparable trajectory for the cache's DRAM and GC
// cost: live heap objects and bytes attributable to the cache at the
// resident-key count, bytes/key, and GET throughput plus total pause while
// collections are forced back to back.
type gcBenchRow struct {
	Shards         int     `json:"shards"`
	Keys           int     `json:"keys"`
	HeapObjects    uint64  `json:"heapobjs"`
	HeapBytes      uint64  `json:"heap_bytes"`
	BytesPerKey    float64 `json:"bytes_per_key"`
	GCPauseTotalNs uint64  `json:"gc_pause_total_ns"`
	GCCycles       uint32  `json:"gc_cycles"`
	GetOpsPerSec   float64 `json:"get_ops_per_sec"`
	HitRatio       float64 `json:"hit_ratio"`
	NumCPU         int     `json:"num_cpu"`
	Device         string  `json:"device"`
}

// runGCBench measures the cache's GC footprint at each shard count: the
// internal/gcbench harness populates the target key count, settles the heap,
// and reports the live-object/byte delta plus GET throughput under forced
// collections. The table and BENCH_gc.json are the repo's regression pin for
// the off-heap index layout — heapobjs growing with keys again means a
// pointer-dense structure crept back into the steady state.
func runGCBench(out io.Writer, o gcBenchOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}

	var rows []gcBenchRow
	fmt.Fprintf(out, "%-7s %-9s %-10s %-11s %-9s %-11s %-9s %-12s %-7s\n",
		"shards", "keys", "heapobjs", "heapbytes", "b/key", "gcpause_ms", "gccycles", "get_ops/s", "hit%")
	for _, shards := range shardCounts {
		res, err := gcbench.Run(gcbench.Options{
			Device: o.device,
			Shards: shards,
			Keys:   o.keys,
			GetOps: o.ops,
		})
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		row := gcBenchRow{
			Shards:         res.Shards,
			Keys:           res.Keys,
			HeapObjects:    res.HeapObjects,
			HeapBytes:      res.HeapBytes,
			BytesPerKey:    res.BytesPerKey,
			GCPauseTotalNs: res.GCPauseTotalNs,
			GCCycles:       res.GCCycles,
			GetOpsPerSec:   res.GetOpsPerSec,
			HitRatio:       res.HitRatio,
			NumCPU:         runtime.NumCPU(),
			Device:         o.device.String(),
		}
		rows = append(rows, row)
		fmt.Fprintf(out, "%-7d %-9d %-10d %-11d %-9.1f %-11.2f %-9d %-12.0f %-7.2f\n",
			row.Shards, row.Keys, row.HeapObjects, row.HeapBytes, row.BytesPerKey,
			float64(row.GCPauseTotalNs)/1e6, row.GCCycles, row.GetOpsPerSec, row.HitRatio*100)
	}

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}
