package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"nemo/internal/backend"
	"nemo/internal/servebench"
)

// serveBenchOptions carries the -servebench flag set.
type serveBenchOptions struct {
	shardList string       // comma-separated shard counts
	conns     int          // client connections
	ops       int          // total requests per configuration
	pipeline  int          // requests per pipelined batch
	flushers  int          // background flushers for the async rows
	device    backend.Spec // device backend the rows run on
	jsonPath  string       // output path for the machine-readable baseline
}

// serveBenchRow is one measured configuration, serialized to
// BENCH_serve.json so CI keeps an end-to-end (network-path) perf baseline
// next to the in-process get/set ones. Latencies are depth-`pipeline`
// batch round trips in microseconds.
type serveBenchRow struct {
	Shards      int     `json:"shards"`
	Conns       int     `json:"conns"`
	Pipeline    int     `json:"pipeline"`
	Async       bool    `json:"async"`
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	GetP50Us    float64 `json:"get_p50_us"`
	GetP99Us    float64 `json:"get_p99_us"`
	SetP50Us    float64 `json:"set_p50_us"`
	SetP99Us    float64 `json:"set_p99_us"`
	Hits        int     `json:"hits"`
	Errors      int     `json:"errors"`
	ReadErrors  uint64  `json:"read_errors"`
	WriteErrors uint64  `json:"write_errors"`
	NumCPU      int     `json:"num_cpu"`
	Device      string  `json:"device"`
}

// runServeBench drives the full serving stack — live loopback listener,
// pipelined memcached-protocol clients, batched engine rounds, graceful
// drain — for each shard count, in async (SetAsync + flusher pool) and
// sync-set mode, prints the table, and writes the JSON baseline.
func runServeBench(out io.Writer, o serveBenchOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}
	if o.ops <= 0 {
		o.ops = 100_000
	}
	if o.conns <= 0 {
		o.conns = 4
	}

	var rows []serveBenchRow
	fmt.Fprintf(out, "%-7s %-6s %-9s %-6s %-9s %-10s %-9s %-9s %-9s %-9s %-7s %-6s\n",
		"shards", "conns", "pipeline", "mode", "ops", "ops/s", "getp50", "getp99", "setp50", "setp99", "hits", "errs")
	for _, shards := range shardCounts {
		if servebench.Zones%shards != 0 {
			fmt.Fprintf(out, "%-7d skipped: %d data zones not divisible\n", shards, servebench.Zones)
			continue
		}
		for _, async := range []bool{false, true} {
			flushers := 0
			if async {
				flushers = o.flushers
			}
			res, err := servebench.Run(servebench.Config{
				Shards:   shards,
				Flushers: flushers,
				SyncSet:  !async,
				Conns:    o.conns,
				Ops:      o.ops,
				Pipeline: o.pipeline,
				Device:   o.device,
			})
			if err != nil {
				return fmt.Errorf("shards=%d async=%v: %w", shards, async, err)
			}
			mode := "sync"
			if async {
				mode = "async"
			}
			row := serveBenchRow{
				Shards:      res.Shards,
				Conns:       res.Conns,
				Pipeline:    res.Pipeline,
				Async:       async,
				Ops:         res.Ops,
				OpsPerSec:   res.OpsPerSec,
				GetP50Us:    us(res.GetP50),
				GetP99Us:    us(res.GetP99),
				SetP50Us:    us(res.SetP50),
				SetP99Us:    us(res.SetP99),
				Hits:        res.Hits,
				Errors:      res.Errors,
				ReadErrors:  res.ReadErrors,
				WriteErrors: res.WriteErrors,
				NumCPU:      runtime.NumCPU(),
				Device:      o.device.String(),
			}
			rows = append(rows, row)
			fmt.Fprintf(out, "%-7d %-6d %-9d %-6s %-9d %-10.0f %-9v %-9v %-9v %-9v %-7d %-6d\n",
				row.Shards, row.Conns, row.Pipeline, mode, row.Ops, row.OpsPerSec,
				res.GetP50.Round(time.Microsecond), res.GetP99.Round(time.Microsecond),
				res.SetP50.Round(time.Microsecond), res.SetP99.Round(time.Microsecond),
				row.Hits, row.Errors)
		}
	}

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}

// us converts a duration to float microseconds for the JSON rows.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
