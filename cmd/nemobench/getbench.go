package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"nemo/internal/backend"
	"nemo/internal/getbench"
)

// getBenchOptions carries the -getbench flag set.
type getBenchOptions struct {
	shardList string       // comma-separated shard counts
	ops       int          // GET count per configuration
	device    backend.Spec // device backend the rows run on
	jsonPath  string       // output path for the machine-readable baseline
}

// getBenchRow is one measured configuration, serialized to BENCH_get.json
// so CI runs accumulate a comparable perf trajectory for the read path.
type getBenchRow struct {
	Shards      int     `json:"shards"`
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HeapObjects uint64  `json:"heapobjs"` // live heap objects after the measured pass
	HitRatio    float64 `json:"hit_ratio"`
	NumCPU      int     `json:"num_cpu"`
	Device      string  `json:"device"`
}

// runGetBench measures parallel GET throughput and per-op allocations at
// 1/4/8 goroutines for each shard count, prints the table, and writes the
// JSON baseline. The workload is the shared internal/getbench harness —
// the same cache geometry, prefill, and stride walk BenchmarkParallelGet
// and TestParallelGetScaling measure — so the CI baseline and the Go
// benchmarks stay comparable. Most hits serve from flash, making the
// three-phase read path (plan/I-O/commit, core/readpath.go) what the
// numbers measure.
func runGetBench(out io.Writer, o getBenchOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}
	if o.ops <= 0 {
		o.ops = 200_000
	}

	var rows []getBenchRow
	fmt.Fprintf(out, "%-7s %-11s %-10s %-12s %-10s %-10s %-7s\n",
		"shards", "goroutines", "ops", "ops/s", "allocs/op", "heapobjs", "hit%")
	for _, shards := range shardCounts {
		if getbench.Zones%shards != 0 {
			fmt.Fprintf(out, "%-7d skipped: %d data zones not divisible\n", shards, getbench.Zones)
			continue
		}
		cache, dev, keys, err := getbench.Build(o.device, shards)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		for _, gs := range []int{1, 4, 8} {
			// Warm-up pass: scratch pools, hotness bitmaps, index cache.
			getbench.Run(cache, keys, gs, o.ops/8)
			before := cache.Stats()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			elapsed := getbench.Run(cache, keys, gs, o.ops)
			runtime.ReadMemStats(&ms1)
			after := cache.Stats()
			delta := after.Gets - before.Gets
			// Live-object count after the measured pass: collect first so
			// the gauge reports retained objects, not transient garbage.
			runtime.GC()
			var msLive runtime.MemStats
			runtime.ReadMemStats(&msLive)
			row := getBenchRow{
				Shards:      shards,
				Goroutines:  gs,
				Ops:         int(delta),
				OpsPerSec:   float64(delta) / elapsed.Seconds(),
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(delta),
				HeapObjects: msLive.HeapObjects,
				HitRatio:    float64(after.Hits-before.Hits) / float64(delta),
				NumCPU:      runtime.NumCPU(),
				Device:      o.device.String(),
			}
			rows = append(rows, row)
			fmt.Fprintf(out, "%-7d %-11d %-10d %-12.0f %-10.2f %-10d %-7.2f\n",
				row.Shards, row.Goroutines, row.Ops, row.OpsPerSec,
				row.AllocsPerOp, row.HeapObjects, row.HitRatio*100)
		}
		if err := cache.Close(); err != nil {
			dev.Close()
			return fmt.Errorf("shards=%d: close: %w", shards, err)
		}
		if err := dev.Close(); err != nil {
			return fmt.Errorf("shards=%d: close device: %w", shards, err)
		}
	}

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}
