package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"nemo/internal/backend"
	"nemo/internal/chaos"
)

// chaosOptions carries the -chaos flag set.
type chaosOptions struct {
	scenarios string       // comma-separated scenario names, or "all"
	seed      int64        // fault-plan seed
	shards    int          // engine shards
	flushers  int          // background flushers (async mode)
	async     bool         // serve SETs via SetAsync + flusher pool
	conns     int          // client connections
	ops       int          // total requests per scenario
	pipeline  int          // requests per pipelined batch
	device    backend.Spec // device backend the scenarios run on
	jsonPath  string       // machine-readable output path
}

// runChaos drives the chaos harness: for each requested scenario, serve a
// breaker-enabled engine over loopback, inject the scenario's fault plan
// under load, heal, and verify the stack recovers on its own — printing
// the availability table and writing BENCH_chaos.json.
func runChaos(out io.Writer, o chaosOptions) error {
	var scens []chaos.Scenario
	if o.scenarios == "" || o.scenarios == "all" {
		scens = chaos.Scenarios()
	} else {
		for _, name := range strings.Split(o.scenarios, ",") {
			s, err := chaos.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			scens = append(scens, s)
		}
	}

	var results []chaos.Result
	fmt.Fprintf(out, "%-14s %-7s %-8s %-7s %-7s %-9s %-8s %-9s %-9s %-8s\n",
		"scenario", "ops", "avail", "sheds", "errs", "degraded", "deg_s", "recover", "injected", "retries")
	for _, s := range scens {
		flushers := 0
		if o.async {
			flushers = o.flushers
		}
		res, err := chaos.Run(chaos.Config{
			Scenario: s,
			Seed:     uint64(o.seed),
			Device:   o.device,
			Shards:   o.shards,
			Flushers: flushers,
			SyncSet:  !o.async,
			Conns:    o.conns,
			Ops:      o.ops,
			Pipeline: o.pipeline,
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		results = append(results, res)
		fmt.Fprintf(out, "%-14s %-7d %-8.4f %-7d %-7d %-9d %-8d %-9.3f %-9d %-8d\n",
			res.Scenario, res.Ops, res.Availability, res.DegradedSheds, res.OtherErrors,
			res.DegradedEntered, res.DegradedSeconds, res.RecoverySecs,
			res.InjectedWrites+res.InjectedReads, res.WriteRetries)
	}

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}
