// Command nemobench regenerates the paper's tables and figures against the
// simulated flash device.
//
// Usage:
//
//	nemobench -list
//	nemobench -exp fig12a [-scale small|medium|large] [-ops N] [-seed S]
//	nemobench -all [-scale medium]
//	nemobench -replay [-shards 1,2,4,8] [-workers K] [-ops N] [-seed S]
//	          [-batch B] [-async] [-flushers K] [-setfrac F] [-delfrac F]
//	          [-snapshot <path>]
//	nemobench -compare [-shards 1,2,4] [-engines nemo,log,set,kg,fw]
//	          [-parallel] [-notime] [-scale small|medium|large] [...]
//	nemobench -getbench [-shards 1,8] [-ops N] [-json BENCH_get.json]
//	nemobench -gcbench [-shards 1,8] [-keys N] [-ops N] [-json BENCH_gc.json]
//	nemobench -setbench [-shards 1,8] [-ops N] [-flushers K] [-json BENCH_set.json]
//	nemobench -servebench [-shards 1,8] [-conns K] [-pipeline P] [-ops N]
//	          [-flushers K] [-json BENCH_serve.json]
//	nemobench -chaos [-scenario write-outage,flaky-writes|all] [-shards 2]
//	          [-conns K] [-ops N] [-async -flushers K] [-seed S]
//	          [-device file:<path>] [-json BENCH_chaos.json]
//	nemobench ... [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -replay runs the parallel trace-replay benchmark: the same materialized
// Twitter-style trace is replayed against the sharded engine at each shard
// count (total cache capacity held constant) and a row of host wall-clock
// throughput, hit ratio, write amplification, and Set latency percentiles
// is printed per configuration. -batch drives the Engine v2 batched surface
// (per-shard GetMany/SetMany sub-batches), -async routes fills through
// SetAsync and a -flushers-sized background flush pool (watch the setp99
// column drop), and -setfrac/-delfrac rewrite a fraction of the trace into
// explicit SET and DELETE operations.
//
// -compare runs the cross-engine comparison harness: one materialized mixed
// trace replayed through all five sharded engines (Nemo natively, the four
// baselines behind the generic sharded facade) at each shard count, printing
// the Figure 12/15-style quality and throughput table. -engines filters the
// set, -parallel replays the engines of a shard count concurrently, and
// -notime drops the wall-clock columns so the table is byte-deterministic.
//
// -getbench measures the concurrent GET path: parallel lookup throughput
// and per-op allocations at 1/4/8 goroutines per shard count, written to
// -json (default BENCH_get.json) so CI keeps a machine-readable perf
// baseline for the read path.
//
// -gcbench measures the cache's GC footprint: populate -keys resident keys
// (default 1M; the harness retains nothing per key), settle the heap, and
// report live HeapObjects/bytes attributable to the cache, DRAM bytes/key,
// and GET throughput plus total pause while collections are forced back to
// back (default BENCH_gc.json). This is the regression pin for the off-heap
// index-cache arena and slab-backed set pages.
//
// -setbench is the write-path mirror: parallel SET throughput, per-call
// p50/p99 latency, and ALWA at 1/4/8 goroutines per shard count, in both
// synchronous and async-flush mode (default BENCH_set.json). The
// sync-vs-async setp99 gap in one table is the three-phase background
// flush pipeline's measured win on this host. -cpuprofile/-memprofile
// write pprof profiles for any mode.
//
// -servebench measures the serving layer end to end: a live loopback
// listener (internal/server) driven by -conns memcached-protocol client
// connections issuing depth -pipeline batches of mixed gets and sets, in
// sync-set and async (SetAsync + -flushers pool) mode per shard count. The
// table and BENCH_serve.json report whole-stack ops/s and batch round-trip
// get/set p50/p99 — the network-path extension of the BENCH trajectory.
//
// -chaos runs the fault-injection harness: each named scenario (a seeded
// device fault plan — error rates, added latency, fail-N-then-recover,
// per-zone kills) is armed against a breaker-enabled engine serving real
// loopback clients. The table and BENCH_chaos.json report availability
// (served ops %), degraded sheds, breaker trips and degraded-window
// seconds, and the measured heal-to-recovery time; a scenario the stack
// cannot recover from fails the run.
//
// Each experiment prints the rows or series of the corresponding paper
// artifact; EXPERIMENTS.md records reference output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nemo/internal/backend"
	"nemo/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds main's body so profile teardown survives every exit path.
func run() int {
	var (
		exp       = flag.String("exp", "", "experiment ID to run (see -list)")
		all       = flag.Bool("all", false, "run every registered experiment")
		list      = flag.Bool("list", false, "list experiments")
		scale     = flag.String("scale", "medium", "device/workload scale: small, medium, large")
		ops       = flag.Int("ops", 0, "override request count (0 = scale default)")
		seed      = flag.Int64("seed", 1, "workload seed")
		replay    = flag.Bool("replay", false, "run the parallel trace-replay benchmark")
		shards    = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -replay")
		workers   = flag.Int("workers", 0, "replay worker goroutines (0 = one per shard)")
		batch     = flag.Int("batch", 0, "per-shard batch size for -replay (<=1 = unbatched)")
		async     = flag.Bool("async", false, "-replay: fills via SetAsync + background flusher pool")
		flushers  = flag.Int("flushers", 2, "background flusher goroutines: -replay/-compare with -async, and -setbench's async rows")
		setFrac   = flag.Float64("setfrac", 0, "fraction of requests rewritten to explicit SETs (-compare defaults to 0.1)")
		delFrac   = flag.Float64("delfrac", 0, "fraction of requests rewritten to DELETEs (-compare defaults to 0.02)")
		compare   = flag.Bool("compare", false, "run the cross-engine sharded comparison harness")
		engines   = flag.String("engines", "", "-compare: comma-separated engine filter (nemo,log,set,kg,fw; empty = all)")
		parallel  = flag.Bool("parallel", false, "-compare: replay the engines of one shard count concurrently")
		noTime    = flag.Bool("notime", false, "-compare: omit wall-clock columns (byte-deterministic table)")
		getbench  = flag.Bool("getbench", false, "run the parallel GET-path benchmark")
		gcb       = flag.Bool("gcbench", false, "run the GC-pressure benchmark (heap footprint + GETs under forced GC)")
		keys      = flag.Int("keys", 0, "-gcbench: resident key count per configuration (0 = 1M)")
		setbench  = flag.Bool("setbench", false, "run the parallel SET-path (flush pipeline) benchmark")
		srvbench  = flag.Bool("servebench", false, "run the end-to-end serving-layer (loopback memcached protocol) benchmark")
		chaosRun  = flag.Bool("chaos", false, "run the chaos-injection harness: fault scenarios against the breaker-enabled serving stack")
		scenarios = flag.String("scenario", "write-outage", "-chaos: comma-separated scenario names, or all (write-outage, flaky-writes, slow-reads, zone-kill)")
		conns     = flag.Int("conns", 4, "-servebench: client connections")
		pipelineN = flag.Int("pipeline", 8, "-servebench: requests per pipelined batch")
		deviceStr = flag.String("device", "sim", "device backend for -replay/-compare/-getbench/-setbench/-servebench: sim, or file:<path> (file-backed real device, measured latencies)")
		snapshot  = flag.String("snapshot", "", "-replay/-setbench: warm-restart snapshot path — the run checkpoints, tears the cache down, and warm-restores mid-benchmark, reporting restore time (and warm hit ratio for -replay)")
		jsonOut   = flag.String("json", "", "-getbench/-setbench/-servebench: machine-readable output path (unset: BENCH_get.json / BENCH_set.json / BENCH_serve.json per mode; pass -json '' explicitly for table-only output)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	deviceSpec, err := backend.Parse(*deviceStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// -json defaults per benchmark mode (BENCH_get.json / BENCH_set.json);
	// an explicitly passed value — including the empty string, which means
	// "table only" — wins.
	jsonExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "json" {
			jsonExplicit = true
		}
	})

	if *getbench {
		path := *jsonOut
		if !jsonExplicit {
			path = "BENCH_get.json"
		}
		err := runGetBench(os.Stdout, getBenchOptions{
			shardList: *shards,
			ops:       *ops,
			device:    deviceSpec,
			jsonPath:  path,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *gcb {
		path := *jsonOut
		if !jsonExplicit {
			path = "BENCH_gc.json"
		}
		err := runGCBench(os.Stdout, gcBenchOptions{
			shardList: *shards,
			keys:      *keys,
			ops:       *ops,
			device:    deviceSpec,
			jsonPath:  path,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *setbench {
		path := *jsonOut
		if !jsonExplicit {
			path = "BENCH_set.json"
		}
		err := runSetBench(os.Stdout, setBenchOptions{
			shardList: *shards,
			ops:       *ops,
			flushers:  *flushers,
			device:    deviceSpec,
			jsonPath:  path,
			snapshot:  *snapshot,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *chaosRun {
		path := *jsonOut
		if !jsonExplicit {
			path = "BENCH_chaos.json"
		}
		// -shards is a list flag shared with the other benches; chaos runs
		// one engine per scenario, so it takes the first count.
		shardCounts, err := parseShardList(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		err = runChaos(os.Stdout, chaosOptions{
			scenarios: *scenarios,
			seed:      *seed,
			shards:    shardCounts[0],
			flushers:  *flushers,
			async:     *async,
			conns:     *conns,
			ops:       *ops,
			pipeline:  *pipelineN,
			device:    deviceSpec,
			jsonPath:  path,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *srvbench {
		path := *jsonOut
		if !jsonExplicit {
			path = "BENCH_serve.json"
		}
		err := runServeBench(os.Stdout, serveBenchOptions{
			shardList: *shards,
			conns:     *conns,
			ops:       *ops,
			pipeline:  *pipelineN,
			flushers:  *flushers,
			device:    deviceSpec,
			jsonPath:  path,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *compare {
		// The compare harness treats 0 as "unset" (its defaults are a
		// mixed trace); an explicitly passed -setfrac 0 / -delfrac 0 must
		// mean a pure-GET trace, which it spells as a negative value.
		flag.Visit(func(f *flag.Flag) {
			switch {
			case f.Name == "setfrac" && *setFrac == 0:
				*setFrac = -1
			case f.Name == "delfrac" && *delFrac == 0:
				*delFrac = -1
			}
		})
		err := runCompare(os.Stdout, compareOptions{
			shardList: *shards,
			workers:   *workers,
			ops:       *ops,
			seed:      *seed,
			batch:     *batch,
			async:     *async,
			flushers:  *flushers,
			setFrac:   *setFrac,
			delFrac:   *delFrac,
			scale:     *scale,
			engines:   *engines,
			parallel:  *parallel,
			noTime:    *noTime,
			device:    deviceSpec,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *replay {
		err := runReplay(os.Stdout, replayOptions{
			shardList: *shards,
			workers:   *workers,
			ops:       *ops,
			seed:      *seed,
			batch:     *batch,
			async:     *async,
			flushers:  *flushers,
			setFrac:   *setFrac,
			delFrac:   *delFrac,
			device:    deviceSpec,
			snapshot:  *snapshot,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}
	opts := experiments.Options{Scale: *scale, Ops: *ops, Seed: *seed, Out: os.Stdout}
	switch {
	case *all:
		for _, e := range experiments.Registry {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(opts); err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
				return 1
			}
			fmt.Printf("--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	case *exp != "":
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}
