package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"nemo"
	"nemo/internal/backend"
	"nemo/internal/device"
)

// replayDataZones is the total SG-pool size used by -replay runs. It is held
// constant across shard counts so every configuration caches the same number
// of bytes and the hit-ratio / write-amplification columns stay comparable;
// only the partitioning (and therefore the attainable parallelism) changes.
const replayDataZones = 48

// replayOptions carries the -replay flag set.
type replayOptions struct {
	shardList string       // comma-separated shard counts
	workers   int          // replay goroutines (0 = one per shard)
	ops       int          // request count
	seed      int64        // workload seed
	batch     int          // per-shard batch size (<=1 = unbatched)
	async     bool         // route fills through SetAsync + the flusher pool
	flushers  int          // background flusher goroutines when async
	setFrac   float64      // fraction of requests rewritten to explicit SETs
	delFrac   float64      // fraction of requests rewritten to DELETEs
	device    backend.Spec // device backend every row runs on
	snapshot  string       // warm-restart snapshot path (kill-and-restore mid-trace)
}

// runReplay drives the parallel trace-replay benchmark: one row per shard
// count, replaying the identical materialized (optionally mixed
// GET/SET/DELETE) trace and reporting host wall-clock throughput and Set
// latency percentiles next to the paper's quality metrics. The p99 Set
// latency column is where -async shows: without it, the occasional Set pays
// a whole-SG flush inline; with it, the flush runs on the background pool.
//
// With -snapshot the row becomes a kill-and-restore run: the first half of
// the trace is replayed, the cache checkpoints and closes, a fresh cache
// warm-restores from the snapshot on the same device, and the second half
// replays against it. Two extra columns report the restore time and the
// post-restore hit ratio (warmhit%) — the latter should match an
// uninterrupted run, which is exactly what the kill-and-restore test pins.
func runReplay(out io.Writer, o replayOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}
	if o.ops <= 0 {
		o.ops = 300_000
	}

	// Generate the trace once: every configuration replays the same
	// requests against the same total cache capacity.
	geom := nemo.DeviceConfig{PagesPerZone: 64}
	probe := nemo.NewDevice(geom)
	dataBytes := int64(replayDataZones*probe.PagesPerZone()) * int64(probe.PageSize())
	pageSize, pagesPerZone := probe.PageSize(), probe.PagesPerZone()
	stream, err := nemo.NewWorkload(dataBytes*3/4, o.seed)
	if err != nil {
		return err
	}
	if o.setFrac > 0 || o.delFrac > 0 {
		stream, err = nemo.NewMixedStream(stream, o.setFrac, o.delFrac, o.seed)
		if err != nil {
			return err
		}
	}
	reqs := nemo.Materialize(stream, o.ops)

	header := "%-7s %-8s %-6s %-10s %-12s %-12s %-7s %-7s %-7s %-6s %-6s %-10s %-10s"
	headerCols := []any{"shards", "workers", "batch", "ops", "elapsed", "ops/s", "hit%", "WA", "ALWA", "rderr", "wrerr", "setp50", "setp99"}
	if o.snapshot != "" {
		header += " %-8s %-8s"
		headerCols = append(headerCols, "restms", "warmhit%")
	}
	fmt.Fprintf(out, header+"\n", headerCols...)
	for _, shards := range shardCounts {
		if replayDataZones%shards != 0 {
			fmt.Fprintf(out, "%-7d skipped: %d data zones not divisible\n", shards, replayDataZones)
			continue
		}
		perData := replayDataZones / shards
		perIdx := nemo.IndexZonesFor(perData, 50)
		dev, err := o.device.Open(device.Geometry{
			PageSize:     pageSize,
			PagesPerZone: pagesPerZone,
			Zones:        shards * (perData + perIdx),
		})
		if err != nil {
			return fmt.Errorf("shards=%d: open device: %w", shards, err)
		}
		ccfg := nemo.DefaultConfig(dev, replayDataZones)
		ccfg.Shards = shards
		if o.async {
			ccfg.Flushers = o.flushers
		}
		snapPath := ""
		if o.snapshot != "" {
			snapPath = fmt.Sprintf("%s.%d", o.snapshot, shards)
			os.Remove(snapPath) // a leftover snapshot would be stale anyway
			ccfg.SnapshotPath = snapPath
		}
		cache, err := nemo.NewSharded(ccfg)
		if err != nil {
			dev.Close()
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		rcfg := nemo.ParallelReplayConfig{
			Workers:   o.workers,
			BatchSize: o.batch,
			AsyncSets: o.async,
		}
		var restoreMS int64
		warmHit := 0.0
		firstHalf := reqs
		if o.snapshot != "" {
			firstHalf = reqs[:len(reqs)/2]
		}
		res, err := nemo.ParallelReplay(cache, firstHalf, rcfg)
		if err != nil {
			cache.Close()
			dev.Close()
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		if o.snapshot != "" {
			// Kill: checkpoint and tear the cache down. Restore: rebuild on
			// the same device and adopt the snapshot, then run the rest.
			if err := cache.Close(); err != nil {
				dev.Close()
				return fmt.Errorf("shards=%d: checkpoint close: %w", shards, err)
			}
			t0 := time.Now()
			cache, err = nemo.NewSharded(ccfg)
			restoreMS = time.Since(t0).Milliseconds()
			if err != nil {
				dev.Close()
				return fmt.Errorf("shards=%d: reopen: %w", shards, err)
			}
			if restored, rerr := cache.RestoreOutcome(); !restored {
				fmt.Fprintf(out, "%-7d warm restore failed (%v) — continuing cold\n", shards, rerr)
			}
			before := cache.Stats()
			res2, err := nemo.ParallelReplay(cache, reqs[len(reqs)/2:], rcfg)
			if err != nil {
				cache.Close()
				dev.Close()
				return fmt.Errorf("shards=%d: %w", shards, err)
			}
			after := cache.Stats()
			if gets := after.Gets - before.Gets; gets > 0 {
				warmHit = float64(after.Hits-before.Hits) / float64(gets) * 100
			}
			// Merge the halves into one row: the final stats are cumulative
			// (they survived the restart — that is the point), so the
			// quality columns already cover the whole trace.
			res2.Ops += res.Ops
			res2.Elapsed += res.Elapsed
			res2.OpsPerSec = float64(res2.Ops) / res2.Elapsed.Seconds()
			res = res2
		}
		st := res.Final
		cols := []any{
			res.Shards, res.Workers, o.batch, res.Ops, res.Elapsed.Round(1e6),
			res.OpsPerSec, (1 - st.MissRatio()) * 100, cache.PaperWA(), st.ALWA(),
			st.ReadErrors, st.WriteErrors, res.SetLatency.P50, res.SetLatency.P99,
		}
		row := "%-7d %-8d %-6d %-10d %-12v %-12.0f %-7.2f %-7.3f %-7.2f %-6d %-6d %-10v %-10v"
		if o.snapshot != "" {
			row += " %-8d %-8.2f"
			cols = append(cols, restoreMS, warmHit)
		}
		fmt.Fprintf(out, row+"\n", cols...)
		if err := cache.Close(); err != nil {
			dev.Close()
			return fmt.Errorf("shards=%d: close: %w", shards, err)
		}
		if err := dev.Close(); err != nil {
			return fmt.Errorf("shards=%d: close device: %w", shards, err)
		}
	}
	return nil
}

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty shard list")
	}
	return out, nil
}
