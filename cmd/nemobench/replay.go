package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"nemo"
	"nemo/internal/backend"
	"nemo/internal/device"
)

// replayDataZones is the total SG-pool size used by -replay runs. It is held
// constant across shard counts so every configuration caches the same number
// of bytes and the hit-ratio / write-amplification columns stay comparable;
// only the partitioning (and therefore the attainable parallelism) changes.
const replayDataZones = 48

// replayOptions carries the -replay flag set.
type replayOptions struct {
	shardList string       // comma-separated shard counts
	workers   int          // replay goroutines (0 = one per shard)
	ops       int          // request count
	seed      int64        // workload seed
	batch     int          // per-shard batch size (<=1 = unbatched)
	async     bool         // route fills through SetAsync + the flusher pool
	flushers  int          // background flusher goroutines when async
	setFrac   float64      // fraction of requests rewritten to explicit SETs
	delFrac   float64      // fraction of requests rewritten to DELETEs
	device    backend.Spec // device backend every row runs on
}

// runReplay drives the parallel trace-replay benchmark: one row per shard
// count, replaying the identical materialized (optionally mixed
// GET/SET/DELETE) trace and reporting host wall-clock throughput and Set
// latency percentiles next to the paper's quality metrics. The p99 Set
// latency column is where -async shows: without it, the occasional Set pays
// a whole-SG flush inline; with it, the flush runs on the background pool.
func runReplay(out io.Writer, o replayOptions) error {
	shardCounts, err := parseShardList(o.shardList)
	if err != nil {
		return err
	}
	if o.ops <= 0 {
		o.ops = 300_000
	}

	// Generate the trace once: every configuration replays the same
	// requests against the same total cache capacity.
	geom := nemo.DeviceConfig{PagesPerZone: 64}
	probe := nemo.NewDevice(geom)
	dataBytes := int64(replayDataZones*probe.PagesPerZone()) * int64(probe.PageSize())
	pageSize, pagesPerZone := probe.PageSize(), probe.PagesPerZone()
	stream, err := nemo.NewWorkload(dataBytes*3/4, o.seed)
	if err != nil {
		return err
	}
	if o.setFrac > 0 || o.delFrac > 0 {
		stream, err = nemo.NewMixedStream(stream, o.setFrac, o.delFrac, o.seed)
		if err != nil {
			return err
		}
	}
	reqs := nemo.Materialize(stream, o.ops)

	fmt.Fprintf(out, "%-7s %-8s %-6s %-10s %-12s %-12s %-7s %-7s %-7s %-6s %-6s %-10s %-10s\n",
		"shards", "workers", "batch", "ops", "elapsed", "ops/s", "hit%", "WA", "ALWA", "rderr", "wrerr", "setp50", "setp99")
	for _, shards := range shardCounts {
		if replayDataZones%shards != 0 {
			fmt.Fprintf(out, "%-7d skipped: %d data zones not divisible\n", shards, replayDataZones)
			continue
		}
		perData := replayDataZones / shards
		perIdx := nemo.IndexZonesFor(perData, 50)
		dev, err := o.device.Open(device.Geometry{
			PageSize:     pageSize,
			PagesPerZone: pagesPerZone,
			Zones:        shards * (perData + perIdx),
		})
		if err != nil {
			return fmt.Errorf("shards=%d: open device: %w", shards, err)
		}
		ccfg := nemo.DefaultConfig(dev, replayDataZones)
		ccfg.Shards = shards
		if o.async {
			ccfg.Flushers = o.flushers
		}
		cache, err := nemo.NewSharded(ccfg)
		if err != nil {
			dev.Close()
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		res, err := nemo.ParallelReplay(cache, reqs, nemo.ParallelReplayConfig{
			Workers:   o.workers,
			BatchSize: o.batch,
			AsyncSets: o.async,
		})
		if err != nil {
			cache.Close()
			dev.Close()
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		st := res.Final
		fmt.Fprintf(out, "%-7d %-8d %-6d %-10d %-12v %-12.0f %-7.2f %-7.3f %-7.2f %-6d %-6d %-10v %-10v\n",
			res.Shards, res.Workers, o.batch, res.Ops, res.Elapsed.Round(1e6),
			res.OpsPerSec, (1-st.MissRatio())*100, cache.PaperWA(), st.ALWA(),
			st.ReadErrors, st.WriteErrors, res.SetLatency.P50, res.SetLatency.P99)
		if err := cache.Close(); err != nil {
			dev.Close()
			return fmt.Errorf("shards=%d: close: %w", shards, err)
		}
		if err := dev.Close(); err != nil {
			return fmt.Errorf("shards=%d: close device: %w", shards, err)
		}
	}
	return nil
}

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty shard list")
	}
	return out, nil
}
