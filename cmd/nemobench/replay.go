package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"nemo"
)

// replayDataZones is the total SG-pool size used by -replay runs. It is held
// constant across shard counts so every configuration caches the same number
// of bytes and the hit-ratio / write-amplification columns stay comparable;
// only the partitioning (and therefore the attainable parallelism) changes.
const replayDataZones = 48

// runReplay drives the parallel trace-replay benchmark: one row per shard
// count, replaying the identical materialized trace and reporting host
// wall-clock throughput next to the paper's quality metrics.
func runReplay(out io.Writer, shardList string, workers, ops int, seed int64) error {
	shardCounts, err := parseShardList(shardList)
	if err != nil {
		return err
	}
	if ops <= 0 {
		ops = 300_000
	}

	// Generate the trace once: every configuration replays the same
	// requests against the same total cache capacity.
	geom := nemo.DeviceConfig{PagesPerZone: 64}
	probe := nemo.NewDevice(geom)
	dataBytes := int64(replayDataZones*probe.PagesPerZone()) * int64(probe.PageSize())
	stream, err := nemo.NewWorkload(dataBytes*3/4, seed)
	if err != nil {
		return err
	}
	reqs := nemo.Materialize(stream, ops)

	fmt.Fprintf(out, "%-7s %-8s %-10s %-12s %-12s %-7s %-7s %-7s\n",
		"shards", "workers", "ops", "elapsed", "ops/s", "hit%", "WA", "ALWA")
	for _, shards := range shardCounts {
		if replayDataZones%shards != 0 {
			fmt.Fprintf(out, "%-7d skipped: %d data zones not divisible\n", shards, replayDataZones)
			continue
		}
		cfg := geom
		perData := replayDataZones / shards
		perIdx := nemo.IndexZonesFor(perData, 50)
		cfg.Zones = shards * (perData + perIdx)
		dev := nemo.NewDevice(cfg)
		ccfg := nemo.DefaultConfig(dev, replayDataZones)
		ccfg.Shards = shards
		cache, err := nemo.NewSharded(ccfg)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		res, err := nemo.ParallelReplay(cache, reqs, nemo.ParallelReplayConfig{Workers: workers})
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		st := res.Final
		fmt.Fprintf(out, "%-7d %-8d %-10d %-12v %-12.0f %-7.2f %-7.3f %-7.2f\n",
			res.Shards, res.Workers, res.Ops, res.Elapsed.Round(1e6),
			res.OpsPerSec, (1-st.MissRatio())*100, cache.PaperWA(), st.ALWA())
	}
	return nil
}

func parseShardList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty shard list")
	}
	return out, nil
}
