// Command nemomodel prints the paper's analytic models without running any
// simulation: the §3.2 hierarchical write-amplification equations, Table 6's
// metadata costs, and the Appendix A PBFG trade-off.
//
// Usage:
//
//	nemomodel                      # paper-parameter summary
//	nemomodel -flash 360 -log 5 -op 5 -obj 246
package main

import (
	"flag"
	"fmt"

	"nemo/internal/wamodel"
)

func main() {
	var (
		flashGB = flag.Float64("flash", 360, "flash capacity in GB")
		logPct  = flag.Float64("log", 5, "HLog share in percent")
		opPct   = flag.Float64("op", 5, "HSet over-provisioning in percent")
		objSize = flag.Float64("obj", 246, "average object size in bytes")
		p       = flag.Float64("p", 0.25, "passive migration fraction")
	)
	flag.Parse()

	totalPages := int(*flashGB * 1024 * 1024 * 1024 / 4096)
	logPages := int(float64(totalPages) * *logPct / 100)
	cfg := wamodel.HierarchicalConfig{
		PageSize:        4096,
		ObjSize:         *objSize,
		LogPages:        logPages,
		SetPages:        totalPages - logPages,
		OPRatio:         *opPct / 100,
		HotColdDivision: true,
	}
	fmt.Printf("Hierarchical WA model (§3.2) — flash %.0f GB, log %.0f%%, OP %.0f%%, obj %.0f B\n",
		*flashGB, *logPct, *opPct, *objSize)
	fmt.Printf("  usable sets N'      : %.0f\n", cfg.UsableSets())
	fmt.Printf("  hash range (FW)     : %.0f\n", cfg.HashRange())
	fmt.Printf("  E(L_i)              : %.2f objects\n", cfg.ExpectedListLen())
	fmt.Printf("  L2SWA(P)  (Eq. 6)   : %.2f\n", cfg.L2SWAPassive())
	fmt.Printf("  L2SWA(A)            : %.2f\n", cfg.L2SWAActive())
	fmt.Printf("  L2SWA(p=%.2f) (Eq.8): %.2f\n", *p, cfg.L2SWA(*p))
	fmt.Printf("  total WA (Eq. 1)    : %.2f\n", cfg.TotalWA(1.0, *p))

	kg := cfg
	kg.HotColdDivision = false
	fmt.Printf("  Kangaroo L2SWA(P)   : %.2f (no hot/cold division)\n\n", kg.L2SWAPassive())

	fmt.Println("Table 6 — metadata bits per object:")
	for _, r := range wamodel.Table6(wamodel.DefaultTable6()) {
		fmt.Printf("  %-12s %6.1f bits/obj\n", r.Name, r.Total)
	}
	fmt.Println()

	pc := wamodel.PBFGCostConfig{NumSGs: 350, TargetObjsPerSet: 40, PageSize: 4096}
	fmt.Println("Appendix A — PBFG lookup cost (N=350):")
	for _, fpr := range []float64{0.01, 0.001, 0.0001} {
		pages, objs, total := wamodel.PBFGCost(pc, fpr)
		fmt.Printf("  FPR %7.3f%%: %2.0f PBFG pages + %.2f object reads = %.2f\n",
			fpr*100, pages, objs, total)
	}
	best, cost := wamodel.OptimalFPR(pc, nil)
	fmt.Printf("  optimal FPR %.3f%% (cost %.2f)\n", best*100, cost)
}
