// Command speedtest is a quick per-engine throughput and write-amplification
// probe on a small simulated device — useful for spotting performance
// regressions in any engine without running the full experiment suite.
package main

import (
	"fmt"
	"time"

	"nemo"
)

func main() {
	builds := []struct {
		name string
		mk   func(nemo.Device) (nemo.Engine, error)
	}{
		{"Nemo", func(d nemo.Device) (nemo.Engine, error) { return nemo.New(nemo.DefaultConfig(d, 48)) }},
		{"Log", func(d nemo.Device) (nemo.Engine, error) { return nemo.NewLogCache(nemo.LogCacheConfig{Device: d}) }},
		{"Set", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewSetCache(nemo.SetCacheConfig{Device: d, OPRatio: 0.5})
		}},
		{"FW", func(d nemo.Device) (nemo.Engine, error) { return nemo.NewFairyWREN(nemo.FairyWRENConfig{Device: d}) }},
		{"KG", func(d nemo.Device) (nemo.Engine, error) { return nemo.NewKangaroo(nemo.KangarooConfig{Device: d}) }},
	}
	for _, b := range builds {
		dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 32, Zones: 56})
		e, err := b.mk(dev)
		if err != nil {
			panic(err)
		}
		w, err := nemo.NewWorkload(dev.CapacityBytes()*14/10/4, 7)
		if err != nil {
			panic(err)
		}
		var req nemo.Request
		start := time.Now()
		ops := 50000
		for i := 0; i < ops; i++ {
			w.Next(&req)
			if _, hit := e.Get(req.Key); !hit {
				if err := e.Set(req.Key, req.Value); err != nil {
					panic(err)
				}
			}
		}
		el := time.Since(start)
		st := e.Stats()
		fmt.Printf("%-5s %8.0f ops/s  ALWA=%6.2f totalWA=%6.2f miss=%4.1f%%\n",
			b.name, float64(ops)/el.Seconds(), st.ALWA(), st.TotalWA(), st.MissRatio()*100)
	}
}
