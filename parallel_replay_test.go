package nemo_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"nemo"
)

// replayDataZones mirrors cmd/nemobench's -replay geometry: the total SG
// pool is constant across shard counts so hit ratio and write amplification
// stay comparable while partitioning changes.
const replayDataZones = 48

func buildShardedReplayCache(t testing.TB, shards int) *nemo.ShardedCache {
	t.Helper()
	perData := replayDataZones / shards
	perIdx := nemo.IndexZonesFor(perData, 50)
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64, Zones: shards * (perData + perIdx)})
	cfg := nemo.DefaultConfig(dev, replayDataZones)
	cfg.Shards = shards
	c, err := nemo.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func replayTrace(t testing.TB, ops int) []nemo.Request {
	t.Helper()
	probe := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64})
	dataBytes := int64(replayDataZones*probe.PagesPerZone()) * int64(probe.PageSize())
	stream, err := nemo.NewWorkload(dataBytes*3/4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return nemo.Materialize(stream, ops)
}

// TestParallelReplayMatchesSequential pins the parallel driver itself: with
// one shard and one worker it must produce exactly the statistics of a plain
// sequential demand-fill replay of the same trace on the unsharded engine.
func TestParallelReplayMatchesSequential(t *testing.T) {
	reqs := replayTrace(t, 60_000)

	seqDev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64,
		Zones: replayDataZones + nemo.IndexZonesFor(replayDataZones, 50)})
	seq, err := nemo.New(nemo.DefaultConfig(seqDev, replayDataZones))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if _, hit := seq.Get(reqs[i].Key); !hit {
			if err := seq.Set(reqs[i].Key, reqs[i].Value); err != nil {
				t.Fatal(err)
			}
		}
	}

	par := buildShardedReplayCache(t, 1)
	res, err := nemo.ParallelReplay(par, reqs, nemo.ParallelReplayConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != seq.Stats() {
		t.Fatalf("parallel driver diverged from sequential replay:\nparallel:   %+v\nsequential: %+v",
			res.Final, seq.Stats())
	}
	if got, want := par.PaperWA(), seq.PaperWA(); got != want {
		t.Fatalf("paper WA diverged: %v vs %v", got, want)
	}
}

// TestParallelReplayDeterministicAcrossWorkers checks the driver's core
// guarantee: per-shard sequencing makes hit ratio and write amplification
// independent of how many workers replay the trace.
func TestParallelReplayDeterministicAcrossWorkers(t *testing.T) {
	reqs := replayTrace(t, 60_000)
	var ref nemo.Stats
	for i, workers := range []int{1, 2, 8} {
		c := buildShardedReplayCache(t, 8)
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Final
			continue
		}
		if res.Final != ref {
			t.Fatalf("workers=%d changed replay stats:\ngot: %+v\nref: %+v", workers, res.Final, ref)
		}
	}
}

// TestShardedReplayThroughputAndQuality is the headline scaling check: on
// the same trace, the 8-shard engine must sustain at least 3× the ops/s of
// the 1-shard configuration while reporting equivalent aggregate hit ratio
// and write amplification. The speedup has two stacked sources: each shard
// scans an 8× smaller PBFG index per Get (~1.2× even on one core), and
// shards proceed under independent locks on independent cores. The quality
// assertions always run; the wall-clock ratio is asserted only where it is
// physically attainable — ≥ 8 schedulable CPUs and no race detector (whose
// instrumentation distorts wall-clock ratios).
func TestShardedReplayThroughputAndQuality(t *testing.T) {
	reqs := replayTrace(t, 150_000)

	run := func(shards int) (opsPerSec, hitRatio, wa float64) {
		c := buildShardedReplayCache(t, shards)
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec, 1 - res.Final.MissRatio(), c.PaperWA()
	}

	// Quality must be equivalent regardless of host speed, so these
	// assertions always run.
	ops1, hit1, wa1 := run(1)
	ops8, hit8, wa8 := run(8)
	t.Logf("shards=1: %.0f ops/s hit=%.4f WA=%.4f", ops1, hit1, wa1)
	t.Logf("shards=8: %.0f ops/s hit=%.4f WA=%.4f", ops8, hit8, wa8)
	if d := math.Abs(hit1 - hit8); d > 0.02 {
		t.Fatalf("hit ratios diverged by %.4f (1-shard %.4f vs 8-shard %.4f)", d, hit1, hit8)
	}
	if d := math.Abs(wa1 - wa8); d > 0.2 {
		t.Fatalf("write amplification diverged by %.3f (1-shard %.3f vs 8-shard %.3f)", d, wa1, wa8)
	}

	speedup := ops8 / ops1
	t.Logf("8-shard speedup: %.2f× on %d CPUs", speedup, runtime.NumCPU())
	if raceEnabled {
		t.Skip("skipping wall-clock speedup assertion under -race")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("skipping ≥3× speedup assertion on %d CPUs: 8 shards cannot run in parallel", runtime.NumCPU())
	}
	if speedup < 3 {
		// One retry damps scheduler noise on loaded hosts.
		ops1b, _, _ := run(1)
		ops8b, _, _ := run(8)
		if retry := ops8b / ops1b; retry > speedup {
			speedup = retry
		}
	}
	if speedup < 3 {
		t.Fatalf("8-shard engine sustained only %.2f× the 1-shard throughput, want ≥ 3×", speedup)
	}
}

// shardCountsForBench are the configurations BenchmarkParallelReplay sweeps.
var shardCountsForBench = []int{1, 2, 4, 8}

// BenchmarkParallelReplay replays the same materialized trace against the
// sharded engine at several shard counts, reporting wall-clock throughput
// next to the paper's quality metrics (run with -bench ParallelReplay).
func BenchmarkParallelReplay(b *testing.B) {
	reqs := replayTrace(b, 150_000)
	for _, shards := range shardCountsForBench {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var opsPerSec, hit, wa float64
			for i := 0; i < b.N; i++ {
				c := buildShardedReplayCache(b, shards)
				res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{})
				if err != nil {
					b.Fatal(err)
				}
				opsPerSec += res.OpsPerSec
				hit = 1 - res.Final.MissRatio()
				wa = c.PaperWA()
			}
			b.ReportMetric(opsPerSec/float64(b.N), "ops/s")
			b.ReportMetric(hit*100, "hit%")
			b.ReportMetric(wa, "WA")
		})
	}
}
