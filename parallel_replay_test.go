package nemo_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"nemo"
)

// replayDataZones mirrors cmd/nemobench's -replay geometry: the total SG
// pool is constant across shard counts so hit ratio and write amplification
// stay comparable while partitioning changes.
const replayDataZones = 48

func buildShardedReplayCache(t testing.TB, shards int) *nemo.ShardedCache {
	t.Helper()
	perData := replayDataZones / shards
	perIdx := nemo.IndexZonesFor(perData, 50)
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64, Zones: shards * (perData + perIdx)})
	cfg := nemo.DefaultConfig(dev, replayDataZones)
	cfg.Shards = shards
	c, err := nemo.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildShardedAsyncReplayCache(t testing.TB, shards, flushers int) *nemo.ShardedCache {
	t.Helper()
	perData := replayDataZones / shards
	perIdx := nemo.IndexZonesFor(perData, 50)
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64, Zones: shards * (perData + perIdx)})
	cfg := nemo.DefaultConfig(dev, replayDataZones)
	cfg.Shards = shards
	cfg.Flushers = flushers
	c, err := nemo.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func replayTrace(t testing.TB, ops int) []nemo.Request {
	t.Helper()
	probe := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64})
	dataBytes := int64(replayDataZones*probe.PagesPerZone()) * int64(probe.PageSize())
	stream, err := nemo.NewWorkload(dataBytes*3/4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return nemo.Materialize(stream, ops)
}

// TestParallelReplayMatchesSequential pins the parallel driver itself: with
// one shard and one worker it must produce exactly the statistics of a plain
// sequential demand-fill replay of the same trace on the unsharded engine.
func TestParallelReplayMatchesSequential(t *testing.T) {
	reqs := replayTrace(t, 60_000)

	seqDev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64,
		Zones: replayDataZones + nemo.IndexZonesFor(replayDataZones, 50)})
	seq, err := nemo.New(nemo.DefaultConfig(seqDev, replayDataZones))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if _, hit := seq.Get(reqs[i].Key); !hit {
			if err := seq.Set(reqs[i].Key, reqs[i].Value); err != nil {
				t.Fatal(err)
			}
		}
	}

	par := buildShardedReplayCache(t, 1)
	res, err := nemo.ParallelReplay(par, reqs, nemo.ParallelReplayConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != seq.Stats() {
		t.Fatalf("parallel driver diverged from sequential replay:\nparallel:   %+v\nsequential: %+v",
			res.Final, seq.Stats())
	}
	if got, want := par.PaperWA(), seq.PaperWA(); got != want {
		t.Fatalf("paper WA diverged: %v vs %v", got, want)
	}
}

// TestParallelReplayDeterministicAcrossWorkers checks the driver's core
// guarantee: per-shard sequencing makes hit ratio and write amplification
// independent of how many workers replay the trace — unbatched and batched
// alike (batches are composed per shard, so batch boundaries cannot depend
// on the worker count either).
func TestParallelReplayDeterministicAcrossWorkers(t *testing.T) {
	reqs := replayTrace(t, 60_000)
	for _, batch := range []int{0, 16} {
		var ref nemo.Stats
		for i, workers := range []int{1, 2, 8} {
			c := buildShardedReplayCache(t, 8)
			res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{Workers: workers, BatchSize: batch})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = res.Final
				continue
			}
			if res.Final != ref {
				t.Fatalf("batch=%d workers=%d changed replay stats:\ngot: %+v\nref: %+v",
					batch, workers, res.Final, ref)
			}
		}
	}
}

// TestParallelReplayDeterministicAcrossBatchSizes pins Engine v2's batched
// surface against the unbatched driver: per-shard batching with exact
// duplicate handling (repeats replay serially after the batch's fills)
// keeps hit ratio and write amplification — every write-side and hit-side
// counter — identical at every batch size on this trace. Only the flash
// read traffic may drift fractionally: delaying a fill to the end of its
// batch can shift which PBFG/candidate reads a neighboring lookup needs.
func TestParallelReplayDeterministicAcrossBatchSizes(t *testing.T) {
	reqs := replayTrace(t, 60_000)
	var ref nemo.Stats
	var refWA float64
	run := func(batch int) (nemo.Stats, float64) {
		c := buildShardedReplayCache(t, 8)
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res.Final, c.PaperWA()
	}
	ref, refWA = run(0)
	for _, batch := range []int{1, 8, 64} {
		got, gotWA := run(batch)
		if rel := math.Abs(float64(got.FlashBytesRead)-float64(ref.FlashBytesRead)) / float64(ref.FlashBytesRead); rel > 0.01 {
			t.Fatalf("batch=%d moved flash read traffic by %.2f%%", batch, rel*100)
		}
		// Read traffic aside, the counter sets must match exactly.
		got.FlashBytesRead, got.FlashReadOps = ref.FlashBytesRead, ref.FlashReadOps
		if got != ref {
			t.Fatalf("batch=%d changed replay stats:\ngot: %+v\nref: %+v", batch, got, ref)
		}
		// Paper WA's denominator is accounted per flushed SG, and batching
		// may shift a fill across a flush boundary, so it is pinned to a
		// 0.1% band rather than bit-exactly (ALWA, computed from the
		// exactly-equal counters above, is already pinned exactly).
		if math.Abs(gotWA-refWA)/refWA > 1e-3 {
			t.Fatalf("batch=%d changed paper WA: %v vs %v", batch, gotWA, refWA)
		}
	}
	// Past production batch depths (256 ≫ the 64-op norm) eviction timing
	// may shift individual op outcomes; hit ratio and WA stay pinned to a
	// 0.1% band.
	got, gotWA := run(256)
	if d := math.Abs(got.MissRatio() - ref.MissRatio()); d > 1e-3 {
		t.Fatalf("batch=256 moved miss ratio by %.5f", d)
	}
	if math.Abs(gotWA-refWA)/refWA > 1e-3 {
		t.Fatalf("batch=256 changed paper WA: %v vs %v", gotWA, refWA)
	}
}

// TestParallelReplayMixedTraceDeterministic drives the full Engine v2
// surface — batched mixed GET/SET/DELETE replay against the sharded engine
// — and pins worker-count independence of the final statistics.
func TestParallelReplayMixedTraceDeterministic(t *testing.T) {
	probe := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64})
	dataBytes := int64(replayDataZones*probe.PagesPerZone()) * int64(probe.PageSize())
	base, err := nemo.NewWorkload(dataBytes*3/4, 1)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := nemo.NewMixedStream(base, 0.1, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := nemo.Materialize(mixed, 60_000)
	var ref nemo.Stats
	for i, workers := range []int{1, 4, 8} {
		c := buildShardedReplayCache(t, 8)
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{Workers: workers, BatchSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Final
			if ref.Deletes == 0 {
				t.Fatal("mixed trace produced no deletes")
			}
			continue
		}
		if res.Final != ref {
			t.Fatalf("workers=%d changed mixed replay stats:\ngot: %+v\nref: %+v", workers, res.Final, ref)
		}
	}
}

// TestParallelReplayAsyncFlush exercises the background flush pipeline end
// to end: fills routed through SetAsync with a flusher pool must preserve
// cache quality within tolerance while recording write latencies.
func TestParallelReplayAsyncFlush(t *testing.T) {
	reqs := replayTrace(t, 60_000)

	syncC := buildShardedReplayCache(t, 8)
	syncRes, err := nemo.ParallelReplay(syncC, reqs, nemo.ParallelReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}

	asyncC := buildShardedAsyncReplayCache(t, 8, 2)
	defer asyncC.Close()
	asyncRes, err := nemo.ParallelReplay(asyncC, reqs, nemo.ParallelReplayConfig{AsyncSets: true})
	if err != nil {
		t.Fatal(err)
	}
	syncHit := 1 - syncRes.Final.MissRatio()
	asyncHit := 1 - asyncRes.Final.MissRatio()
	if d := math.Abs(syncHit - asyncHit); d > 0.03 {
		t.Fatalf("async fills moved hit ratio by %.4f (sync %.4f, async %.4f)", d, syncHit, asyncHit)
	}
	if asyncRes.SetLatency.Count == 0 {
		t.Fatal("async replay recorded no Set latencies")
	}
	if syncRes.SetLatency.Count == 0 {
		t.Fatal("sync replay recorded no Set latencies")
	}
}

// TestAsyncFlushBeatsInlineP99 is the write-pipeline headline (and the
// closeout of ROADMAP's "measure the async p99 win" item): with the
// three-phase flush protocol the background flusher's build-phase I/O runs
// off both the inserting worker AND the shard lock, so an async-flush
// replay's p99 Set latency must beat the inline-flush replay of the same
// trace. Like every wall-clock pin, the assertion self-gates on hosts that
// can physically show it (≥ 8 schedulable CPUs, no race detector) — on
// smaller hosts the flushers share cores with the inserting workers and
// the tail improvement is hidden (though in practice it shows even there).
func TestAsyncFlushBeatsInlineP99(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping wall-clock latency assertion under -race")
	}
	if runtime.NumCPU() < 8 && os.Getenv("NEMO_FORCE_SCALING") != "1" {
		t.Skipf("skipping async-p99 assertion on %d CPUs: flushers cannot overlap the workers", runtime.NumCPU())
	}
	reqs := replayTrace(t, 200_000)
	run := func(async bool) time.Duration {
		var c *nemo.ShardedCache
		if async {
			c = buildShardedAsyncReplayCache(t, 8, 2)
		} else {
			c = buildShardedReplayCache(t, 8)
		}
		defer c.Close()
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{AsyncSets: async})
		if err != nil {
			t.Fatal(err)
		}
		return res.SetLatency.P99
	}
	// Best of two per mode damps scheduler noise on loaded hosts (the
	// sibling wall-clock pins use the same trick).
	best := func(async bool) time.Duration {
		a, b := run(async), run(async)
		if b < a {
			return b
		}
		return a
	}
	syncP99, asyncP99 := best(false), best(true)
	t.Logf("set p99: inline=%v async=%v on %d CPUs", syncP99, asyncP99, runtime.NumCPU())
	if asyncP99 >= syncP99 {
		t.Fatalf("async-flush p99 Set latency %v did not beat inline-flush %v", asyncP99, syncP99)
	}
}

// TestShardedReplayThroughputAndQuality is the headline scaling check: on
// the same trace, the 8-shard engine must sustain at least 3× the ops/s of
// the 1-shard configuration while reporting equivalent aggregate hit ratio
// and write amplification. The speedup has two stacked sources: each shard
// scans an 8× smaller PBFG index per Get (~1.2× even on one core), and
// shards proceed under independent locks on independent cores. The quality
// assertions always run; the wall-clock ratio is asserted only where it is
// physically attainable — ≥ 8 schedulable CPUs and no race detector (whose
// instrumentation distorts wall-clock ratios).
func TestShardedReplayThroughputAndQuality(t *testing.T) {
	reqs := replayTrace(t, 150_000)

	run := func(shards int) (opsPerSec, hitRatio, wa float64) {
		c := buildShardedReplayCache(t, shards)
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec, 1 - res.Final.MissRatio(), c.PaperWA()
	}

	// Quality must be equivalent regardless of host speed, so these
	// assertions always run.
	ops1, hit1, wa1 := run(1)
	ops8, hit8, wa8 := run(8)
	t.Logf("shards=1: %.0f ops/s hit=%.4f WA=%.4f", ops1, hit1, wa1)
	t.Logf("shards=8: %.0f ops/s hit=%.4f WA=%.4f", ops8, hit8, wa8)
	if d := math.Abs(hit1 - hit8); d > 0.02 {
		t.Fatalf("hit ratios diverged by %.4f (1-shard %.4f vs 8-shard %.4f)", d, hit1, hit8)
	}
	if d := math.Abs(wa1 - wa8); d > 0.2 {
		t.Fatalf("write amplification diverged by %.3f (1-shard %.3f vs 8-shard %.3f)", d, wa1, wa8)
	}

	speedup := ops8 / ops1
	t.Logf("8-shard speedup: %.2f× on %d CPUs", speedup, runtime.NumCPU())
	if raceEnabled {
		t.Skip("skipping wall-clock speedup assertion under -race")
	}
	if runtime.NumCPU() < 8 && os.Getenv("NEMO_FORCE_SCALING") != "1" {
		t.Skipf("skipping ≥3× speedup assertion on %d CPUs: 8 shards cannot run in parallel", runtime.NumCPU())
	}
	if speedup < 3 {
		// One retry damps scheduler noise on loaded hosts.
		ops1b, _, _ := run(1)
		ops8b, _, _ := run(8)
		if retry := ops8b / ops1b; retry > speedup {
			speedup = retry
		}
	}
	if speedup < 3 {
		t.Fatalf("8-shard engine sustained only %.2f× the 1-shard throughput, want ≥ 3×", speedup)
	}
}

// TestBatchedReplayThroughput asserts the Engine v2 batched surface's
// headline: batched replay sustains at least the unbatched throughput. The
// structural win is the merged multi-shard GetMany fan-out — a worker that
// owns several shards gets cross-shard parallelism from single calls — so
// the comparison runs with fewer workers than shards. Like the ≥3× sharding
// assertion above, the wall-clock claim is only asserted where it is
// physically attainable: ≥ 8 schedulable CPUs and no race detector. On
// smaller hosts batching is bookkeeping with nothing to parallelize, and
// the quality equivalence (which always holds) is pinned by
// TestParallelReplayDeterministicAcrossBatchSizes.
func TestBatchedReplayThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping wall-clock assertion under -race")
	}
	if runtime.NumCPU() < 8 && os.Getenv("NEMO_FORCE_SCALING") != "1" {
		t.Skipf("skipping batched-throughput assertion on %d CPUs: the fan-out cannot run in parallel", runtime.NumCPU())
	}
	reqs := replayTrace(t, 150_000)
	run := func(batch int) float64 {
		c := buildShardedReplayCache(t, 8)
		res, err := nemo.ParallelReplay(c, reqs, nemo.ParallelReplayConfig{Workers: 2, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec
	}
	best := func(batch int) float64 {
		a, b := run(batch), run(batch)
		if b > a {
			return b
		}
		return a
	}
	unbatched := best(0)
	batched := best(64)
	t.Logf("workers=2 shards=8: unbatched %.0f ops/s, batch=64 %.0f ops/s (%.2f×)",
		unbatched, batched, batched/unbatched)
	if batched < unbatched {
		t.Fatalf("batched replay (%.0f ops/s) slower than unbatched (%.0f ops/s)", batched, unbatched)
	}
}

// shardCountsForBench are the configurations BenchmarkParallelReplay sweeps.
var shardCountsForBench = []int{1, 2, 4, 8}

// BenchmarkParallelReplay replays the same materialized trace against the
// sharded engine at several shard counts — plus batched and async-flush
// variants at 8 shards — reporting wall-clock throughput next to the
// paper's quality metrics (run with -bench ParallelReplay).
func BenchmarkParallelReplay(b *testing.B) {
	reqs := replayTrace(b, 150_000)
	bench := func(name string, mk func(testing.TB) *nemo.ShardedCache, cfg nemo.ParallelReplayConfig) {
		b.Run(name, func(b *testing.B) {
			var opsPerSec, hit, wa float64
			var setP99 time.Duration
			for i := 0; i < b.N; i++ {
				c := mk(b)
				res, err := nemo.ParallelReplay(c, reqs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				opsPerSec += res.OpsPerSec
				hit = 1 - res.Final.MissRatio()
				wa = c.PaperWA()
				setP99 = res.SetLatency.P99
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(opsPerSec/float64(b.N), "ops/s")
			b.ReportMetric(hit*100, "hit%")
			b.ReportMetric(wa, "WA")
			b.ReportMetric(float64(setP99.Nanoseconds()), "setp99-ns")
		})
	}
	for _, shards := range shardCountsForBench {
		shards := shards
		bench(fmt.Sprintf("shards=%d", shards),
			func(tb testing.TB) *nemo.ShardedCache { return buildShardedReplayCache(tb, shards) },
			nemo.ParallelReplayConfig{})
	}
	bench("shards=8/batch=64",
		func(tb testing.TB) *nemo.ShardedCache { return buildShardedReplayCache(tb, 8) },
		nemo.ParallelReplayConfig{BatchSize: 64})
	bench("shards=8/async",
		func(tb testing.TB) *nemo.ShardedCache { return buildShardedAsyncReplayCache(tb, 8, 2) },
		nemo.ParallelReplayConfig{AsyncSets: true})
}
