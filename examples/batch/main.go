// Batch: drive the Engine v2 surface — batched multi-ops, deletes, and the
// asynchronous background flush pipeline — against a sharded Nemo cache.
//
// The sequence mirrors a production cache service's request mix: warm the
// cache with non-blocking SetAsync writes (SG flushes land on the flusher
// pool, not the request path), read back with one batched GetMany per
// request bundle (one hash pass, per-shard sub-batches, parallel fan-out),
// invalidate a few keys, and drain before reading the final counters.
package main

import (
	"fmt"
	"log"

	"nemo"
)

func main() {
	// An 8-shard cache over one simulated ZNS device, with 2 background
	// flusher goroutines serving all shards.
	const shards = 8
	perData := 48 / shards
	perIdx := nemo.IndexZonesFor(perData, 50)
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64, Zones: shards * (perData + perIdx)})
	cfg := nemo.DefaultConfig(dev, 48)
	cfg.Shards = shards
	cfg.Flushers = 2
	cache, err := nemo.NewSharded(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("obj:%08d", i)) }
	val := func(i int) []byte {
		return []byte(fmt.Sprintf("tiny payload %08d padded to a couple hundred bytes %0160d", i, i))
	}

	// 1. Asynchronous warmup: SetAsync returns as soon as the object is in
	// the in-memory SG; full SGs flush on the background pool.
	const objects = 120_000
	for i := 0; i < objects; i++ {
		if err := cache.SetAsync(key(i), val(i)); err != nil {
			log.Fatal(err)
		}
	}
	// Drain before measuring: all deferred flushes reach flash here.
	if err := cache.Drain(); err != nil {
		log.Fatal(err)
	}

	// 2. Batched reads: one GetMany per 64-key bundle. The sharded engine
	// hashes each key once, groups the bundle by shard, and fans the
	// sub-batches out in parallel.
	hits := 0
	const bundle = 64
	for lo := objects - 20_000; lo < objects; lo += bundle {
		keys := make([][]byte, 0, bundle)
		for i := lo; i < lo+bundle && i < objects; i++ {
			keys = append(keys, key(i))
		}
		_, hs := cache.GetMany(keys)
		for _, h := range hs {
			if h {
				hits++
			}
		}
	}

	// 3. Invalidation: Delete tombstones the entry — the next Get misses
	// even though Nemo keeps no exact per-object index.
	for i := objects - 10; i < objects; i++ {
		if err := cache.Delete(key(i)); err != nil {
			log.Fatal(err)
		}
	}
	stale := 0
	for i := objects - 10; i < objects; i++ {
		if _, hit := cache.Get(key(i)); hit {
			stale++
		}
	}

	st := cache.Stats()
	fmt.Printf("objects written (async) : %d\n", st.Sets)
	fmt.Printf("batched read hits       : %d/20000\n", hits)
	fmt.Printf("deletes                 : %d (stale reads after delete: %d)\n", st.Deletes, stale)
	fmt.Printf("write amplification     : %.2f (paper's Nemo: 1.56)\n", cache.PaperWA())
	fmt.Printf("mean SG fill rate       : %.1f%%\n", cache.MeanFillRate()*100)
	if stale > 0 {
		log.Fatal("delete left stale reads")
	}
}
