// Twitterreplay drives Nemo with the paper's benchmark workload: the four
// Table 5 Twitter-like clusters, Zipf-skewed and proportionally interleaved,
// under enough working-set pressure to trigger SG eviction — then reports
// the paper's three headline metrics (write amplification, miss ratio, read
// latency percentiles).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nemo"
)

func main() {
	ops := flag.Int("ops", 1_500_000, "number of GET requests (misses demand-fill)")
	flag.Parse()

	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 96, Zones: 120})
	dataZones := 120 - nemo.IndexZonesFor(114, 50) - 1
	cache, err := nemo.New(nemo.DefaultConfig(dev, dataZones))
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	// Working set ≈ 1.4× cache capacity, split over the four clusters.
	wssPerCluster := dev.CapacityBytes() * 14 / 10 / 4
	workload, err := nemo.NewWorkload(wssPerCluster, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replaying %d ops of the 4-cluster Twitter-like mix...\n", *ops)
	res, err := nemo.Replay(cache, workload, nemo.ReplayConfig{
		Ops:          *ops,
		InterArrival: 10 * time.Microsecond,
		Clock:        dev.Clock(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwrite amplification : %.2f (paper: 1.56)\n", cache.PaperWA())
	fmt.Printf("mean SG fill rate   : %.1f%% (paper: 89.3%%)\n", cache.MeanFillRate()*100)
	fmt.Printf("miss ratio          : %.1f%%\n", res.Final.MissRatio()*100)
	fmt.Printf("read latency        : p50=%v p99=%v p9999=%v\n",
		res.Latency.P50, res.Latency.P99, res.Latency.P9999)
	ex := cache.Extra()
	fmt.Printf("SGs flushed         : %d (writeback objects: %d, sacrificed: %d)\n",
		ex.SGsFlushed, ex.WriteBackObjs, ex.Sacrificed)
	_, _, pbfgMiss := cache.PBFGStats()
	fmt.Printf("PBFG cache misses   : %.1f%% of index lookups (paper: <8%% at 50%% cached)\n", pbfgMiss*100)

	fmt.Println("\nWA timeline:")
	for i, tp := range res.Timeline {
		if i%8 == 0 {
			fmt.Printf("  %9d ops  WA=%5.2f  miss=%5.1f%%\n", tp.Ops, tp.ALWA, tp.MissRatio*100)
		}
	}
}
