// Devicecompat demonstrates §6 of the paper ("Device compatibility"): the
// same Nemo cache running on three device personalities —
//
//  1. a large-zone ZNS SSD (ZN540-like: one SG per zone, 14 open zones max),
//  2. a small-zone ZNS SSD (PM1731a-like: an SG composed of 4 zones),
//  3. a conventional namespace (no open-zone limit, FIFO writes only).
//
// Nemo's coarse-grained FIFO write pattern needs no code changes across
// them — only the SG-to-erase-unit mapping differs.
package main

import (
	"fmt"
	"log"
	"time"

	"nemo"
)

type personality struct {
	name       string
	device     nemo.DeviceConfig
	zonesPerSG int
}

func main() {
	personalities := []personality{
		{
			name:       "large-zone ZNS (ZN540-like)",
			device:     nemo.DeviceConfig{PagesPerZone: 128, Zones: 72, MaxOpenZones: 14},
			zonesPerSG: 1,
		},
		{
			name:       "small-zone ZNS (PM1731a-like)",
			device:     nemo.DeviceConfig{PagesPerZone: 32, Zones: 288, MaxOpenZones: 14},
			zonesPerSG: 4,
		},
		{
			name:       "conventional namespace",
			device:     nemo.DeviceConfig{PagesPerZone: 128, Zones: 72},
			zonesPerSG: 1,
		},
	}
	fmt.Printf("%-30s %10s %8s %8s %12s\n", "device", "fill", "WA", "miss", "zone resets")
	for _, p := range personalities {
		dev := nemo.NewDevice(p.device)
		dataZones := dev.Zones() - 8*p.zonesPerSG
		dataZones -= dataZones % p.zonesPerSG
		cfg := nemo.DefaultConfig(dev, dataZones)
		cfg.ZonesPerSG = p.zonesPerSG
		cache, err := nemo.New(cfg)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		workload, err := nemo.NewWorkload(dev.CapacityBytes()*3/4, 11)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nemo.Replay(cache, workload, nemo.ReplayConfig{
			Ops:          1_200_000,
			InterArrival: 10 * time.Microsecond,
			Clock:        dev.Clock(),
		})
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%-30s %9.1f%% %8.2f %7.1f%% %12d\n",
			p.name, cache.MeanFillRate()*100, cache.PaperWA(),
			res.Final.MissRatio()*100, dev.Stats().ZoneResets)
		cache.Close()
	}
	fmt.Println("\nSame engine, same write pattern — only the SG↔erase-unit mapping changes (§6).")
	fmt.Println("On FDP SSDs the mapping inverts (several SGs per reclaim unit); the FIFO pool")
	fmt.Println("ensures SGs sharing a reclaim unit die together, so DLWA stays ≈1 there too.")
}
