// Comparison runs the same workload through all five cache designs — Nemo,
// the log-structured and set-associative extremes, and the two hierarchical
// baselines — and prints a Figure 12a-style summary of the trade-off space:
// write amplification vs memory vs miss ratio.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nemo"
)

func main() {
	ops := flag.Int("ops", 600_000, "requests per engine")
	flag.Parse()

	type build struct {
		name string
		mk   func(nemo.Device) (nemo.Engine, error)
	}
	builds := []build{
		{"Nemo", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.New(nemo.DefaultConfig(d, d.Zones()-nemo.IndexZonesFor(d.Zones()-4, 50)-1))
		}},
		{"Log", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewLogCache(nemo.LogCacheConfig{Device: d})
		}},
		{"Set", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewSetCache(nemo.SetCacheConfig{Device: d, OPRatio: 0.5})
		}},
		{"FW", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewFairyWREN(nemo.FairyWRENConfig{Device: d, LogRatio: 0.05, OPRatio: 0.05})
		}},
		{"KG", func(d nemo.Device) (nemo.Engine, error) {
			return nemo.NewKangaroo(nemo.KangarooConfig{Device: d, LogRatio: 0.05, OPRatio: 0.05})
		}},
	}

	fmt.Printf("%-6s %8s %8s %8s %10s %12s\n", "engine", "ALWA", "totalWA", "miss", "p99 read", "flash MB")
	for _, b := range builds {
		dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64, Zones: 80})
		e, err := b.mk(dev)
		if err != nil {
			log.Fatalf("%s: %v", b.name, err)
		}
		workload, err := nemo.NewWorkload(dev.CapacityBytes()*3/4, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nemo.Replay(e, workload, nemo.ReplayConfig{
			Ops:          *ops,
			InterArrival: 10 * time.Microsecond,
			Clock:        dev.Clock(),
		})
		if err != nil {
			log.Fatalf("%s: %v", b.name, err)
		}
		st := res.Final
		fmt.Printf("%-6s %8.2f %8.2f %7.1f%% %10v %12.1f\n",
			b.name, st.ALWA(), st.TotalWA(), st.MissRatio()*100,
			res.Latency.P99, float64(st.DeviceBytesWritten)/(1<<20))
		e.Close()
	}
	fmt.Println("\n(Paper Figure 12a: Nemo 1.56, Log 1.08, FW 15.2, Set 16.31, KG 55.59 —")
	fmt.Println(" the ordering and rough factors should reproduce; absolute values depend on scale.)")
}
