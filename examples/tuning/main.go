// Tuning sweeps Nemo's two user-facing knobs the paper studies in its
// sensitivity analysis: the flush threshold p_th (Figure 18 — later flushes
// raise SG fill and lower WA, at the cost of sacrificed objects) and the
// cached-PBFG ratio (Figure 19b — more index memory, fewer on-flash index
// reads).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nemo"
)

func run(ops int, mutate func(*nemo.Config)) (*nemo.Cache, nemo.ReplayResult) {
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 64, Zones: 80})
	cfg := nemo.DefaultConfig(dev, dev.Zones()-nemo.IndexZonesFor(dev.Zones()-4, 50)-1)
	mutate(&cfg)
	cache, err := nemo.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	workload, err := nemo.NewWorkload(dev.CapacityBytes()*3/4, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nemo.Replay(cache, workload, nemo.ReplayConfig{
		Ops: ops, InterArrival: 10 * time.Microsecond, Clock: dev.Clock(),
	})
	if err != nil {
		log.Fatal(err)
	}
	return cache, res
}

func main() {
	ops := flag.Int("ops", 400_000, "requests per configuration")
	flag.Parse()

	fmt.Println("p_th sweep (Figure 18): flush threshold vs fill rate and WA")
	fmt.Printf("%8s %10s %8s %12s\n", "p_th", "fill", "WA", "sacrificed")
	for _, pth := range []int{1, 4, 16, 64, 256} {
		cache, _ := run(*ops, func(c *nemo.Config) { c.FlushThreshold = pth })
		fmt.Printf("%8d %9.1f%% %8.2f %12d\n",
			pth, cache.MeanFillRate()*100, cache.PaperWA(), cache.Extra().Sacrificed)
		cache.Close()
	}

	fmt.Println("\ncached-PBFG ratio sweep (Figure 19b): index memory vs index-pool reads")
	fmt.Printf("%8s %12s %14s\n", "cached", "PBFG miss", "mem bits/obj")
	for _, ratio := range []float64{0.2, 0.3, 0.4, 0.5, 0.6} {
		cache, _ := run(*ops, func(c *nemo.Config) { c.CachedPBFGRatio = ratio })
		_, _, miss := cache.PBFGStats()
		fmt.Printf("%7.0f%% %11.2f%% %14.1f\n",
			ratio*100, miss*100, cache.MemoryOverhead().TotalBitsPerObj)
		cache.Close()
	}
}
