// Quickstart: create a simulated zoned flash device, build a Nemo cache on
// it with the paper's Table 3 defaults, and exercise the KV API.
package main

import (
	"fmt"
	"log"

	"nemo"
)

func main() {
	// A 64-zone simulated ZNS device: 4 KB pages, 96-page (384 KB) zones.
	dev := nemo.NewDevice(nemo.DeviceConfig{PagesPerZone: 96, Zones: 64})

	// Use 56 zones as the SG pool; the rest hold the on-flash PBFG index.
	cfg := nemo.DefaultConfig(dev, 56)
	cache, err := nemo.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	// Tiny objects, like the tweets and comments the paper motivates.
	for i := 0; i < 50_000; i++ {
		key := fmt.Sprintf("tweet:%08d", i)
		value := fmt.Sprintf("tiny object payload number %d — capped at a few hundred bytes", i)
		if err := cache.Set([]byte(key), []byte(value)); err != nil {
			log.Fatal(err)
		}
	}

	// Read some back (recent keys are likely still cached; the oldest were
	// FIFO-evicted at SG granularity).
	hits := 0
	for i := 49_000; i < 50_000; i++ {
		if _, ok := cache.Get([]byte(fmt.Sprintf("tweet:%08d", i))); ok {
			hits++
		}
	}

	st := cache.Stats()
	fmt.Printf("inserted objects       : %d\n", st.Sets)
	fmt.Printf("recent-keys hit        : %d/1000\n", hits)
	fmt.Printf("mean SG fill rate      : %.1f%%\n", cache.MeanFillRate()*100)
	fmt.Printf("write amplification    : %.2f (paper's Nemo: 1.56)\n", cache.PaperWA())
	m := cache.MemoryOverhead()
	fmt.Printf("metadata bits/object   : %.1f (paper: 8.3)\n", m.TotalBitsPerObj)
	fmt.Printf("device writes          : %.1f MB over %d zone resets\n",
		float64(dev.Stats().BytesWritten)/(1<<20), dev.Stats().ZoneResets)
}
