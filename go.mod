module nemo

go 1.24
